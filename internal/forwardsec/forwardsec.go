// Package forwardsec implements the paper's §1 motivating application:
// forward-secrecy encryption whose one-time keys are physically destroyed
// by wearout hardware after a single read.
//
// Software key management can promise to delete a key after use; it
// cannot prevent a compromised OS from having copied it first, nor a
// disk image from resurrecting it. Here each message key lives in a
// read-destructive store behind a one-actuation NEMS gate
// (nems.FabricateDeterministic(1) — the "wears out exactly after one
// access" device of §1): after the legitimate read, the key does not
// exist anywhere, so compromising the archive later reveals nothing about
// previously-read messages.
package forwardsec

import (
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"

	"lemonade/internal/memory"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
)

var (
	// ErrKeyConsumed is returned when a message's one-time key hardware
	// has already been used (or worn out).
	ErrKeyConsumed = errors.New("forwardsec: one-time key already consumed")
	// ErrNoSuchMessage is returned for unknown message indices.
	ErrNoSuchMessage = errors.New("forwardsec: no such message")
)

// keySlot is one one-time key: a single-actuation gate in front of a
// read-destructive store.
type keySlot struct {
	gate  *nems.Switch
	store *memory.ReadDestructive
}

func newKeySlot(key []byte) *keySlot {
	return &keySlot{
		gate:  nems.FabricateDeterministic(1),
		store: memory.NewReadDestructive(key),
	}
}

func (s *keySlot) read(env nems.Environment) ([]byte, error) {
	if err := s.gate.Actuate(env); err != nil {
		return nil, ErrKeyConsumed
	}
	key, err := s.store.Read()
	if err != nil {
		return nil, ErrKeyConsumed
	}
	return key, nil
}

// Archive is an append-only store of messages, each sealed under its own
// hardware one-time key.
type Archive struct {
	entries []entry
	r       *rng.RNG
}

type entry struct {
	ciphertext []byte
	slot       *keySlot
	read       bool
}

// NewArchive returns an empty archive using r for nonces and keys.
// (A production system would use crypto/rand; the deterministic generator
// keeps the simulations reproducible.)
func NewArchive(r *rng.RNG) *Archive {
	return &Archive{r: r}
}

// Seal appends a message, returning its index. The message key exists
// only inside the new hardware slot from this moment on.
func (a *Archive) Seal(plaintext []byte) (int, error) {
	key := make([]byte, 32)
	a.r.Bytes(key)
	block, err := aes.NewCipher(key)
	if err != nil {
		return 0, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return 0, err
	}
	nonce := make([]byte, gcm.NonceSize())
	a.r.Bytes(nonce)
	a.entries = append(a.entries, entry{
		ciphertext: gcm.Seal(nonce, nonce, plaintext, nil),
		slot:       newKeySlot(key),
	})
	return len(a.entries) - 1, nil
}

// Read opens message i, physically consuming its key: a second Read of
// the same message fails forever.
func (a *Archive) Read(i int, env nems.Environment) ([]byte, error) {
	if i < 0 || i >= len(a.entries) {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchMessage, i)
	}
	e := &a.entries[i]
	key, err := e.slot.read(env)
	if err != nil {
		return nil, err
	}
	e.read = true
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return gcm.Open(nil, e.ciphertext[:gcm.NonceSize()], e.ciphertext[gcm.NonceSize():], nil)
}

// Len returns the number of archived messages.
func (a *Archive) Len() int { return len(a.entries) }

// Readable reports whether message i's key still exists.
func (a *Archive) Readable(i int) bool {
	if i < 0 || i >= len(a.entries) {
		return false
	}
	e := a.entries[i]
	return e.slot.gate.Working() && !e.slot.store.Destroyed()
}

// CompromiseDump models a full post-compromise forensic image: the
// adversary gets every ciphertext plus the contents of every key store
// that still physically exists (via cold reads that bypass read
// destruction — the §6.2.2 attack). Messages whose keys were consumed
// before the compromise are unrecoverable; unread messages fall.
// The return value maps message index → recovered plaintext.
func (a *Archive) CompromiseDump() map[int][]byte {
	out := make(map[int][]byte)
	for i := range a.entries {
		e := &a.entries[i]
		key, err := e.slot.store.ColdRead() // destruction bypassed!
		if err != nil {
			continue // key no longer exists anywhere
		}
		block, err := aes.NewCipher(key)
		if err != nil {
			continue
		}
		gcm, err := cipher.NewGCM(block)
		if err != nil {
			continue
		}
		plain, err := gcm.Open(nil, e.ciphertext[:gcm.NonceSize()], e.ciphertext[gcm.NonceSize():], nil)
		if err != nil {
			continue
		}
		out[i] = plain
	}
	return out
}
