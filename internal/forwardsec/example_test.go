package forwardsec_test

import (
	"fmt"

	"lemonade/internal/forwardsec"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
)

// ExampleArchive shows the §1 forward-secrecy property: after a read, not
// even a total compromise (with cold reads) recovers the message.
func ExampleArchive() {
	archive := forwardsec.NewArchive(rng.New(1))
	id, err := archive.Seal([]byte("ephemeral"))
	if err != nil {
		panic(err)
	}
	plain, err := archive.Read(id, nems.RoomTemp)
	if err != nil {
		panic(err)
	}
	fmt.Printf("read: %s\n", plain)
	dump := archive.CompromiseDump()
	_, leaked := dump[id]
	fmt.Println("leaked after compromise:", leaked)
	// Output:
	// read: ephemeral
	// leaked after compromise: false
}
