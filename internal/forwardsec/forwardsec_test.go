package forwardsec

import (
	"bytes"
	"errors"
	"testing"

	"lemonade/internal/nems"
	"lemonade/internal/rng"
)

func TestSealReadRoundTrip(t *testing.T) {
	a := NewArchive(rng.New(1))
	idx, err := a.Seal([]byte("quarterly numbers"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Read(idx, nems.RoomTemp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("quarterly numbers")) {
		t.Errorf("Read = %q", got)
	}
}

func TestSecondReadFailsForever(t *testing.T) {
	a := NewArchive(rng.New(2))
	idx, _ := a.Seal([]byte("once only"))
	if _, err := a.Read(idx, nems.RoomTemp); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := a.Read(idx, nems.RoomTemp); !errors.Is(err, ErrKeyConsumed) {
			t.Fatalf("re-read %d should fail with ErrKeyConsumed, got %v", i, err)
		}
	}
	if a.Readable(idx) {
		t.Error("consumed message should not be readable")
	}
}

func TestForwardSecrecyUnderFullCompromise(t *testing.T) {
	// The package's raison d'être: after a total compromise (cold reads
	// bypassing read destruction!), messages read before the compromise
	// stay secret; unread ones fall.
	a := NewArchive(rng.New(3))
	var idxs []int
	for _, m := range []string{"already read A", "already read B", "never read C"} {
		i, err := a.Seal([]byte(m))
		if err != nil {
			t.Fatal(err)
		}
		idxs = append(idxs, i)
	}
	// legitimate reads of the first two
	for _, i := range idxs[:2] {
		if _, err := a.Read(i, nems.RoomTemp); err != nil {
			t.Fatal(err)
		}
	}
	dump := a.CompromiseDump()
	if _, leaked := dump[idxs[0]]; leaked {
		t.Error("message A leaked after its key was consumed")
	}
	if _, leaked := dump[idxs[1]]; leaked {
		t.Error("message B leaked after its key was consumed")
	}
	plain, leaked := dump[idxs[2]]
	if !leaked {
		t.Error("unread message C should fall to a full compromise")
	} else if !bytes.Equal(plain, []byte("never read C")) {
		t.Error("dump recovered wrong plaintext for C")
	}
}

func TestReadableTracking(t *testing.T) {
	a := NewArchive(rng.New(4))
	i, _ := a.Seal([]byte("x"))
	if !a.Readable(i) {
		t.Error("fresh message should be readable")
	}
	if a.Readable(99) || a.Readable(-1) {
		t.Error("out-of-range indices should not be readable")
	}
	if a.Len() != 1 {
		t.Errorf("Len = %d", a.Len())
	}
}

func TestReadErrors(t *testing.T) {
	a := NewArchive(rng.New(5))
	if _, err := a.Read(0, nems.RoomTemp); !errors.Is(err, ErrNoSuchMessage) {
		t.Errorf("empty archive read: %v", err)
	}
}

func TestManyMessagesIndependentKeys(t *testing.T) {
	// consuming one key must not affect any other message
	a := NewArchive(rng.New(6))
	const n = 30
	msgs := make([][]byte, n)
	for i := range msgs {
		msgs[i] = []byte{byte(i), byte(i + 1), byte(i + 2)}
		if _, err := a.Seal(msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// read evens, leave odds
	for i := 0; i < n; i += 2 {
		got, err := a.Read(i, nems.RoomTemp)
		if err != nil || !bytes.Equal(got, msgs[i]) {
			t.Fatalf("message %d: %v %x", i, err, got)
		}
	}
	for i := 1; i < n; i += 2 {
		if !a.Readable(i) {
			t.Errorf("odd message %d lost its key", i)
		}
	}
}
