package structure

import (
	"math"
	"testing"

	"lemonade/internal/nems"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSeriesReliabilityEq5(t *testing.T) {
	d := weibull.MustNew(10, 4)
	// Eq 5: R_series(x) = exp(-n (x/α)^β)
	for _, n := range []int{1, 2, 5, 20} {
		for _, x := range []float64{1, 5, 9, 12} {
			want := math.Exp(-float64(n) * math.Pow(x/10, 4))
			if got := SeriesReliability(d, n, x); !almostEq(got, want, 1e-12) {
				t.Errorf("SeriesReliability(n=%d, x=%g) = %g, want %g", n, x, got, want)
			}
		}
	}
	if SeriesReliability(d, 0, 5) != 1 {
		t.Error("empty chain should be perfectly reliable")
	}
}

func TestSeriesEquivalentAlpha(t *testing.T) {
	d := weibull.MustNew(12, 12)
	// n devices in series ≡ single device with α/n^(1/β)
	n := 8
	eq := SeriesEquivalentAlpha(d, n)
	de := weibull.MustNew(eq, 12)
	for _, x := range []float64{3, 6, 9} {
		if !almostEq(SeriesReliability(d, n, x), de.Reliability(x), 1e-10) {
			t.Errorf("equivalent-alpha mismatch at x=%g", x)
		}
	}
}

func TestSeriesBlowup(t *testing.T) {
	// Paper §4.1.2: to halve α with β=12 you need 2^12 = 4096 devices.
	d := weibull.MustNew(10, 12)
	if got := SeriesDevicesForAlphaScale(d, 2); got != 4096 {
		t.Errorf("series blowup = %g, want 4096", got)
	}
}

func TestParallelReliabilityEq6(t *testing.T) {
	d := weibull.MustNew(9.3, 12) // Fig 3b parameters
	// Eq 6 for k=1: 1 - (1 - r)^n
	for _, n := range []int{1, 20, 40, 60} {
		for _, x := range []float64{8, 9.3, 10, 11} {
			r := d.Reliability(x)
			want := 1 - math.Pow(1-r, float64(n))
			if got := ParallelReliability(d, n, 1, x); !almostEq(got, want, 1e-9) {
				t.Errorf("ParallelReliability(n=%d, x=%g) = %g, want %g", n, x, got, want)
			}
		}
	}
}

func TestParallelReliabilityEq8BruteForce(t *testing.T) {
	d := weibull.MustNew(20, 12) // Fig 3c parameters
	n := 60
	for _, k := range []int{1, 10, 20, 30, 60} {
		for _, x := range []float64{15, 20, 22, 25} {
			r := d.Reliability(x)
			var want float64
			for i := k; i <= n; i++ {
				want += choose(n, i) * math.Pow(r, float64(i)) * math.Pow(1-r, float64(n-i))
			}
			if got := ParallelReliability(d, n, k, x); !almostEq(got, want, 1e-8) {
				t.Errorf("Eq8(n=%d,k=%d,x=%g) = %g, brute %g", n, k, x, got, want)
			}
		}
	}
}

func choose(n, k int) float64 {
	res := 1.0
	for i := 0; i < k; i++ {
		res *= float64(n-i) / float64(k-i)
	}
	return res
}

func TestParallelReliabilityEdges(t *testing.T) {
	d := weibull.MustNew(10, 8)
	if ParallelReliability(d, 5, 0, 100) != 1 {
		t.Error("k=0 should always work")
	}
	if ParallelReliability(d, 5, 6, 0.001) != 0 {
		t.Error("k>n should never work")
	}
	if got := ParallelReliability(d, 5, 1, 0); got != 1 {
		t.Errorf("at x=0 structure must work, got %g", got)
	}
}

func TestFig3bParallelPushesEdge(t *testing.T) {
	// Paper Fig 3b: α=9.3, β=12; with 98% reliability the 40-device
	// structure works for the 10th access, only ~2.2% chance at the 11th.
	d := weibull.MustNew(9.3, 12)
	r10 := ParallelReliability(d, 40, 1, 10)
	r11 := ParallelReliability(d, 40, 1, 11)
	if r10 < 0.97 {
		t.Errorf("R(10) with 40 devices = %g, paper says ~0.98", r10)
	}
	if r11 > 0.05 {
		t.Errorf("R(11) with 40 devices = %g, paper says ~0.022", r11)
	}
	// and more devices monotonically improve reliability at the 10th access
	if ParallelReliability(d, 60, 1, 10) < r10 {
		t.Error("more parallel devices should not hurt reliability")
	}
	if ParallelReliability(d, 1, 1, 10) > r10 {
		t.Error("single device should be worse than 40")
	}
}

func TestFig3cEncodingTightensWindow(t *testing.T) {
	// Paper Fig 3c: α=20, β=12, n=60. k=30 gives ~92% for the 20th access
	// and ~2% for the 21st; the 20th access succeeds iff devices survived
	// 19 completed cycles, so evaluate the continuous model at t-1.
	d := weibull.MustNew(20, 12)
	r20 := ParallelReliability(d, 60, 30, 19)
	r21 := ParallelReliability(d, 60, 30, 20)
	if r20 < 0.85 {
		t.Errorf("k=30 R(20) = %g, paper says ~0.92", r20)
	}
	if r21 > 0.05 {
		t.Errorf("k=30 R(21) = %g, paper says ~0.02", r21)
	}
	window := func(k int) float64 {
		// x-span over which reliability falls from 0.99 to 0.01
		lo, hi := 0.0, 64.0
		for i := 0; i < 60; i++ {
			mid := (lo + hi) / 2
			if ParallelReliability(d, 60, k, mid) > 0.99 {
				lo = mid
			} else {
				hi = mid
			}
		}
		t99 := lo
		lo, hi = 0.0, 64.0
		for i := 0; i < 60; i++ {
			mid := (lo + hi) / 2
			if ParallelReliability(d, 60, k, mid) > 0.01 {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo - t99
	}
	if w1, w30 := window(1), window(30); w30 >= w1 {
		t.Errorf("k=30 window (%g) should be narrower than k=1 window (%g)", w30, w1)
	}
}

func TestSeriesSimulationMatchesAnalytic(t *testing.T) {
	d := weibull.MustNew(10, 6)
	r := rng.New(17)
	const trials = 4000
	n := 5
	x := 6
	alive := 0
	for tr := 0; tr < trials; tr++ {
		s := NewSeries(d, n, r)
		ok := true
		for i := 0; i < x; i++ {
			if !s.Access(nems.RoomTemp) {
				ok = false
				break
			}
		}
		if ok {
			alive++
		}
	}
	emp := float64(alive) / trials
	// Devices survive ceil(lifetime) actuations; analytic continuous model
	// evaluated at x matches the discrete sim at x (ceil bias ~ +0.5),
	// compare within a tolerant band.
	anaLo := SeriesReliability(d, n, float64(x)+1)
	anaHi := SeriesReliability(d, n, float64(x)-1)
	if emp < anaLo-0.03 || emp > anaHi+0.03 {
		t.Errorf("series empirical %g outside analytic band [%g, %g]", emp, anaLo, anaHi)
	}
}

func TestParallelSimulationMatchesAnalytic(t *testing.T) {
	d := weibull.MustNew(12, 8)
	r := rng.New(23)
	const trials = 4000
	n, k := 30, 5
	x := 10
	alive := 0
	for tr := 0; tr < trials; tr++ {
		p, err := NewParallel(d, n, k, r)
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for i := 0; i < x; i++ {
			if !p.Access(nems.RoomTemp) {
				ok = false
				break
			}
		}
		if ok {
			alive++
		}
	}
	emp := float64(alive) / trials
	anaLo := ParallelReliability(d, n, k, float64(x)+1)
	anaHi := ParallelReliability(d, n, k, float64(x)-1)
	if emp < anaLo-0.03 || emp > anaHi+0.03 {
		t.Errorf("parallel empirical %g outside analytic band [%g, %g]", emp, anaLo, anaHi)
	}
}

func TestParallelValidation(t *testing.T) {
	d := weibull.MustNew(10, 8)
	r := rng.New(1)
	if _, err := NewParallel(d, 5, 0, r); err == nil {
		t.Error("k=0 should be rejected")
	}
	if _, err := NewParallel(d, 5, 6, r); err == nil {
		t.Error("k>n should be rejected")
	}
}

func TestParallelAccessSurvivors(t *testing.T) {
	d := weibull.MustNew(1000, 8) // long-lived: all survive early accesses
	r := rng.New(3)
	p, _ := NewParallel(d, 10, 3, r)
	surv := p.AccessSurvivors(nems.RoomTemp)
	if len(surv) != 10 {
		t.Errorf("fresh structure should have all 10 survivors, got %d", len(surv))
	}
	if p.WorkingCount() != 10 {
		t.Error("WorkingCount mismatch")
	}
	if p.K() != 3 || p.Devices() != 10 {
		t.Error("accessors wrong")
	}
}

func TestSeriesDeathIsPermanent(t *testing.T) {
	d := weibull.MustNew(2, 8)
	r := rng.New(5)
	s := NewSeries(d, 3, r)
	for s.Access(nems.RoomTemp) {
	}
	if s.Alive() {
		t.Error("series should be dead after a failed access")
	}
	if s.Access(nems.RoomTemp) {
		t.Error("dead series should not conduct")
	}
}

func TestSerialCopiesRouting(t *testing.T) {
	// Two deterministic "copies" built from parallel structures of
	// deterministic switches via a tiny alpha trick is awkward; instead use
	// Series of 1 switch with huge alpha and kill them manually through
	// accesses: use small deterministic lifetimes by constructing parallel
	// structures with alpha chosen so devices die fast.
	d := weibull.MustNew(1000, 8)
	r := rng.New(7)
	c1, _ := NewParallel(d, 2, 1, r)
	c2, _ := NewParallel(d, 2, 1, r)
	sc := NewSerialCopies([]Structure{c1, c2})
	if sc.Devices() != 4 {
		t.Errorf("Devices = %d", sc.Devices())
	}
	if !sc.Alive() {
		t.Error("fresh serial copies should be alive")
	}
	if !sc.Access(nems.RoomTemp) {
		t.Error("first access should succeed")
	}
	if sc.CurrentCopy() != 0 {
		t.Error("should still be on copy 0")
	}
}

func TestSerialCopiesAdvanceAndDie(t *testing.T) {
	// Use very short-lived devices so copies die quickly.
	d := weibull.MustNew(3, 12)
	r := rng.New(11)
	mk := func() Structure {
		p, _ := NewParallel(d, 4, 1, r)
		return p
	}
	sc := NewSerialCopies([]Structure{mk(), mk(), mk()})
	total := CountSuccessfulAccesses(sc, nems.RoomTemp, 1000)
	if total < 3 {
		t.Errorf("3 copies of 4 parallel α=3 devices should give several accesses, got %d", total)
	}
	if sc.Alive() {
		t.Error("all copies should be dead")
	}
	if sc.Access(nems.RoomTemp) {
		t.Error("dead system should refuse access")
	}
	if sc.CurrentCopy() < 2 {
		t.Errorf("should have advanced through copies, at %d", sc.CurrentCopy())
	}
}

func TestCountSuccessfulAccessesRespectsMax(t *testing.T) {
	d := weibull.MustNew(1e9, 8) // effectively immortal
	r := rng.New(13)
	p, _ := NewParallel(d, 2, 1, r)
	if got := CountSuccessfulAccesses(p, nems.RoomTemp, 50); got != 50 {
		t.Errorf("capped count = %d, want 50", got)
	}
}

func TestEmpiricalAccessBoundConcentration(t *testing.T) {
	// The whole point of the parallel construction (Fig 3b): empirical
	// access bounds concentrate near the design target. α=9.3 β=12 n=40
	// should give ~10 accesses with small spread.
	d := weibull.MustNew(9.3, 12)
	r := rng.New(41)
	const trials = 800
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		p, _ := NewParallel(d, 40, 1, r)
		got := float64(CountSuccessfulAccesses(p, nems.RoomTemp, 100))
		sum += got
		sumSq += got * got
	}
	mean := sum / trials
	sd := math.Sqrt(sumSq/trials - mean*mean)
	if mean < 9 || mean > 12.5 {
		t.Errorf("mean empirical bound = %g, want ~10-11", mean)
	}
	if sd > 1.5 {
		t.Errorf("spread too wide: sd = %g", sd)
	}
}
