package structure

import (
	"math"
	"testing"
	"testing/quick"

	"lemonade/internal/weibull"
)

// clampParams turns arbitrary fuzz inputs into a valid parameter point.
func clampParams(a, b float64, n, k uint8) (weibull.Dist, int, int) {
	alpha := 1 + math.Abs(math.Mod(a, 50))
	beta := 0.5 + math.Abs(math.Mod(b, 15))
	nn := int(n%200) + 1
	kk := int(k)%nn + 1
	return weibull.MustNew(alpha, beta), nn, kk
}

func TestParallelReliabilityBounds(t *testing.T) {
	f := func(a, b, x float64, n, k uint8) bool {
		d, nn, kk := clampParams(a, b, n, k)
		xx := math.Abs(math.Mod(x, 100))
		v := ParallelReliability(d, nn, kk, xx)
		return v >= 0 && v <= 1 && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParallelReliabilityMonotoneInN(t *testing.T) {
	f := func(a, b, x float64, n, k uint8) bool {
		d, nn, kk := clampParams(a, b, n, k)
		xx := math.Abs(math.Mod(x, 60))
		lo := ParallelReliability(d, nn, kk, xx)
		hi := ParallelReliability(d, nn+8, kk, xx)
		return hi >= lo-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParallelReliabilityAntiMonotoneInK(t *testing.T) {
	f := func(a, b, x float64, n, k uint8) bool {
		d, nn, kk := clampParams(a, b, n, k)
		if kk >= nn {
			return true
		}
		xx := math.Abs(math.Mod(x, 60))
		withK := ParallelReliability(d, nn, kk, xx)
		withK1 := ParallelReliability(d, nn, kk+1, xx)
		return withK1 <= withK+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParallelReliabilityAntiMonotoneInX(t *testing.T) {
	f := func(a, b, x float64, n, k uint8) bool {
		d, nn, kk := clampParams(a, b, n, k)
		xx := math.Abs(math.Mod(x, 60))
		now := ParallelReliability(d, nn, kk, xx)
		later := ParallelReliability(d, nn, kk, xx+1)
		return later <= now+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSeriesNeverBeatsSingleDevice(t *testing.T) {
	// a chain is at most as reliable as its weakest link ⇒ at most a
	// single device
	f := func(a, b, x float64, n uint8) bool {
		d, nn, _ := clampParams(a, b, n, 1)
		xx := math.Abs(math.Mod(x, 60))
		return SeriesReliability(d, nn, xx) <= d.Reliability(xx)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSeriesEquivalentAlphaConsistency(t *testing.T) {
	// the equivalent single-device model must reproduce the chain exactly
	f := func(a, b, x float64, n uint8) bool {
		d, nn, _ := clampParams(a, b, n, 1)
		xx := math.Abs(math.Mod(x, 60))
		eq := weibull.MustNew(SeriesEquivalentAlpha(d, nn), d.Beta)
		lhs := SeriesReliability(d, nn, xx)
		rhs := eq.Reliability(xx)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
