// Package structure implements the wearout structures of Fig 2 of the
// paper as both analytic reliability models and executable simulations:
//
//   - a single NEMS switch (Fig 2a building block),
//   - n switches in series (Fig 2b, Eq 5) — evaluated and rejected by the
//     paper, implemented here so the rejection is reproducible,
//   - n switches in parallel, 1-out-of-n (Fig 2c, Eq 6),
//   - k-out-of-n parallel with redundant encoding (Fig 2d, Eq 8).
//
// Each analytic model answers "with what probability does the structure
// still work at access x?" for devices drawn i.i.d. from a Weibull
// distribution. Each executable structure owns real simulated switches and
// is actuated access by access. The test suite cross-validates the two.
package structure

import (
	"fmt"
	"math"

	"lemonade/internal/mathx"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

// --- Analytic models -------------------------------------------------------------

// SeriesReliability returns the probability a chain of n i.i.d. devices all
// survive access x (Eq 5): R(x)^n = exp(-n (x/α)^β).
func SeriesReliability(d weibull.Dist, n int, x float64) float64 {
	if n <= 0 {
		return 1
	}
	return math.Exp(float64(n) * d.LogReliability(x))
}

// SeriesEquivalentAlpha returns the scale parameter of the single-device
// distribution equivalent to n devices in series: α / n^(1/β). The paper
// uses this to show series chains barely accelerate wearout (§4.1.2).
func SeriesEquivalentAlpha(d weibull.Dist, n int) float64 {
	return d.Alpha / math.Pow(float64(n), 1/d.Beta)
}

// SeriesDevicesForAlphaScale returns how many series devices are needed to
// scale the effective α down by factor y: n = y^β — the exponential blowup
// that makes the paper discard the series option.
func SeriesDevicesForAlphaScale(d weibull.Dist, y float64) float64 {
	return math.Pow(y, d.Beta)
}

// ParallelReliability returns the probability that at least k of n i.i.d.
// devices survive access x. For k = 1 this is Eq 6; for general k it is
// Eq 8, computed with exact binomial tails (regularized incomplete beta) so
// it stays accurate for n up to ~1e9.
func ParallelReliability(d weibull.Dist, n, k int, x float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	logr := d.LogReliability(x)
	if k == 1 {
		// 1 - (1-r)^n, stable when r is tiny: use log1p chains.
		// (1-r)^n = exp(n*log(1-r)); log(1-r) = log1p(-exp(logr)).
		r := math.Exp(logr)
		if r >= 1 {
			return 1
		}
		log1mr := math.Log1p(-r)
		return -math.Expm1(float64(n) * log1mr)
	}
	r := math.Exp(logr)
	return mathx.BinomTailGE(n, k, r)
}

// ParallelExpectedSurvivors returns the expected number of working devices
// in an n-device parallel structure at access x.
func ParallelExpectedSurvivors(d weibull.Dist, n int, x float64) float64 {
	return float64(n) * d.Reliability(x)
}

// --- Executable structures ---------------------------------------------------------

// Structure is a wearout structure that can be accessed until it wears out.
type Structure interface {
	// Access actuates the structure once and reports whether the access
	// succeeded (the structure still conducts / yields enough components).
	Access(env nems.Environment) bool
	// Alive reports whether a future access could still succeed.
	Alive() bool
	// Devices returns the total number of NEMS switches in the structure.
	Devices() int
}

// Series is a chain of switches (Fig 2b); an access succeeds iff every
// switch in the chain conducts.
type Series struct {
	switches []*nems.Switch
	dead     bool
}

// NewSeries fabricates a chain of n switches from d.
func NewSeries(d weibull.Dist, n int, r *rng.RNG) *Series {
	s := &Series{switches: make([]*nems.Switch, n)}
	for i := range s.switches {
		s.switches[i] = nems.Fabricate(d, r)
	}
	return s
}

// Access implements Structure.
func (s *Series) Access(env nems.Environment) bool {
	if s.dead {
		return false
	}
	ok := true
	for _, sw := range s.switches {
		if err := sw.Actuate(env); err != nil {
			ok = false
		}
	}
	if !ok {
		s.dead = true // a failed switch never recovers, so the chain is dead
	}
	return ok
}

// Alive implements Structure.
func (s *Series) Alive() bool { return !s.dead }

// Devices implements Structure.
func (s *Series) Devices() int { return len(s.switches) }

// Parallel is a k-out-of-n parallel structure (Fig 2c with k=1, Fig 2d
// with k>1 plus encoding). An access actuates all surviving switches; it
// succeeds iff at least k of them conduct.
type Parallel struct {
	switches []*nems.Switch
	k        int
}

// NewParallel fabricates an n-device parallel structure requiring k
// survivors per access. k must satisfy 1 <= k <= n.
func NewParallel(d weibull.Dist, n, k int, r *rng.RNG) (*Parallel, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("structure: k=%d out of range [1, %d]", k, n)
	}
	p := &Parallel{switches: make([]*nems.Switch, n), k: k}
	for i := range p.switches {
		p.switches[i] = nems.Fabricate(d, r)
	}
	return p, nil
}

// Access implements Structure. It returns true iff at least k switches
// conducted during this access.
func (p *Parallel) Access(env nems.Environment) bool {
	return len(p.AccessSurvivors(env)) >= p.k
}

// AccessSurvivors actuates every still-working switch and returns the
// indices of those that conducted — the component-key positions the
// decoder can read this access (used by the encoded architectures).
func (p *Parallel) AccessSurvivors(env nems.Environment) []int {
	var ok []int
	for i, sw := range p.switches {
		if sw.Actuate(env) == nil {
			ok = append(ok, i)
		}
	}
	return ok
}

// Alive implements Structure: a future access can succeed iff at least k
// switches are still working.
func (p *Parallel) Alive() bool {
	working := 0
	for _, sw := range p.switches {
		if sw.Working() {
			working++
			if working >= p.k {
				return true
			}
		}
	}
	return false
}

// Devices implements Structure.
func (p *Parallel) Devices() int { return len(p.switches) }

// K returns the survivor threshold.
func (p *Parallel) K() int { return p.k }

// WorkingCount returns how many switches currently work.
func (p *Parallel) WorkingCount() int {
	c := 0
	for _, sw := range p.switches {
		if sw.Working() {
			c++
		}
	}
	return c
}

// SerialCopies is the paper's "N copies" composition (§4.1.1): N identical
// structures used one after another. Accesses are routed to the first
// still-alive copy; when a copy wears out the next one takes over. The
// system is dead when every copy is dead.
type SerialCopies struct {
	copies  []Structure
	current int
}

// NewSerialCopies wraps pre-built copies.
func NewSerialCopies(copies []Structure) *SerialCopies {
	return &SerialCopies{copies: copies}
}

// Access routes one access to the active copy. If the active copy fails the
// access, the access itself fails (the user retries, landing on the next
// copy) — this conservative semantics matches the paper's serial use with
// per-copy passwords.
func (s *SerialCopies) Access(env nems.Environment) bool {
	for s.current < len(s.copies) {
		c := s.copies[s.current]
		if !c.Alive() {
			s.current++
			continue
		}
		return c.Access(env)
	}
	return false
}

// Alive implements Structure.
func (s *SerialCopies) Alive() bool {
	for i := s.current; i < len(s.copies); i++ {
		if s.copies[i].Alive() {
			return true
		}
	}
	return false
}

// Devices implements Structure.
func (s *SerialCopies) Devices() int {
	total := 0
	for _, c := range s.copies {
		total += c.Devices()
	}
	return total
}

// CurrentCopy returns the index of the copy accesses are routed to.
func (s *SerialCopies) CurrentCopy() int { return s.current }

// CountSuccessfulAccesses drives a structure to death under env and returns
// how many accesses succeeded — the empirical access bound of one trial.
func CountSuccessfulAccesses(st Structure, env nems.Environment, max int) int {
	succ := 0
	for i := 0; i < max && st.Alive(); i++ {
		if st.Access(env) {
			succ++
		}
	}
	return succ
}
