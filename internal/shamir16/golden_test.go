package shamir16

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lemonade/internal/rng"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current implementation")

// Pins Split/Combine output bytes (and post-split RNG state) across the
// wide-sharing grid, including odd-length secrets that exercise padding.
// Generated from the scalar implementation; the slice-kernel rewrite must
// match bit for bit.
func goldenDigests(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	scenarios := []struct {
		secretLen, k, n int
		seed            uint64
	}{
		{1, 1, 1, 1},
		{2, 2, 3, 2},
		{32, 2, 3, 42},
		{33, 5, 400, 42},
		{32, 40, 1000, 7},
		{64, 8, 20, 99},
	}
	for _, sc := range scenarios {
		secret := make([]byte, sc.secretLen)
		for i := range secret {
			secret[i] = byte(i*37 + 11)
		}
		r := rng.New(sc.seed)
		shares, err := Split(secret, sc.k, sc.n, r)
		if err != nil {
			t.Fatalf("Split(%d,%d,%d): %v", sc.secretLen, sc.k, sc.n, err)
		}
		h := sha256.New()
		for _, s := range shares {
			fmt.Fprintf(h, "%d|%t|", s.X, s.Padded)
			for _, w := range s.Data {
				fmt.Fprintf(h, "%04x", w)
			}
		}
		for _, w := range r.State() {
			fmt.Fprintf(h, "%016x", w)
		}
		fmt.Fprintf(&b, "split/%d/%d/%d/%d %s\n", sc.secretLen, sc.k, sc.n, sc.seed, hex.EncodeToString(h.Sum(nil)))

		pick := make([]Share, 0, sc.k+1)
		for i := len(shares) - 1; i >= len(shares)-sc.k; i-- {
			pick = append(pick, shares[i])
		}
		pick = append(pick, shares[len(shares)-1])
		got, err := Combine(pick, sc.k)
		if err != nil {
			t.Fatalf("Combine(%d,%d,%d): %v", sc.secretLen, sc.k, sc.n, err)
		}
		sum := sha256.Sum256(got)
		fmt.Fprintf(&b, "combine/%d/%d/%d/%d %s\n", sc.secretLen, sc.k, sc.n, sc.seed, hex.EncodeToString(sum[:]))
	}
	return b.String()
}

func TestGoldenSplitCombine(t *testing.T) {
	got := goldenDigests(t)
	path := filepath.Join("testdata", "shamir16.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}
