package shamir16

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"lemonade/internal/rng"
)

func TestRoundTrip(t *testing.T) {
	r := rng.New(1)
	for _, tc := range []struct {
		secret string
		k, n   int
	}{
		{"even-length secret!!", 3, 7},
		{"odd length secret", 2, 5},
		{"x", 1, 1},
		{"wide sharing beyond GF(256)", 30, 1000},
	} {
		shares, err := Split([]byte(tc.secret), tc.k, tc.n, r)
		if err != nil {
			t.Fatalf("%q: %v", tc.secret, err)
		}
		if len(shares) != tc.n {
			t.Fatalf("got %d shares, want %d", len(shares), tc.n)
		}
		// reconstruct from a scattered subset
		subset := make([]Share, 0, tc.k)
		for i := 0; i < tc.k; i++ {
			subset = append(subset, shares[(i*7)%tc.n])
		}
		// ensure distinctness for the strided pick
		seen := map[uint16]bool{}
		distinct := subset[:0]
		for _, s := range subset {
			if !seen[s.X] {
				seen[s.X] = true
				distinct = append(distinct, s)
			}
		}
		for i := 0; len(distinct) < tc.k; i++ {
			if !seen[shares[i].X] {
				seen[shares[i].X] = true
				distinct = append(distinct, shares[i])
			}
		}
		got, err := Combine(distinct, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte(tc.secret)) {
			t.Errorf("k=%d n=%d: got %q, want %q", tc.k, tc.n, got, tc.secret)
		}
	}
}

func TestWideSharingBeyond255(t *testing.T) {
	// The whole point of this package: n = 1500 like a β=4 structure.
	r := rng.New(2)
	secret := []byte("storage decryption key material!")
	shares, err := Split(secret, 150, 1500, r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Combine(shares[700:850], 150)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Error("wide reconstruction failed")
	}
	// 149 shares must not suffice
	if _, err := Combine(shares[:149], 150); !errors.Is(err, ErrTooFewShares) {
		t.Errorf("expected ErrTooFewShares, got %v", err)
	}
}

func TestValidation(t *testing.T) {
	r := rng.New(3)
	if _, err := Split([]byte("x"), 0, 5, r); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := Split([]byte("x"), 6, 5, r); err == nil {
		t.Error("n<k should error")
	}
	if _, err := Split([]byte("x"), 2, 1<<16, r); err == nil {
		t.Error("n>65535 should error")
	}
	if _, err := Split(nil, 1, 1, r); err == nil {
		t.Error("empty secret should error")
	}
	if _, err := Combine([]Share{{X: 0, Data: []uint16{1}}}, 1); err == nil {
		t.Error("x=0 share should error")
	}
	bad := []Share{{X: 1, Data: []uint16{1, 2}}, {X: 2, Data: []uint16{1}}}
	if _, err := Combine(bad, 2); !errors.Is(err, ErrInconsistent) {
		t.Error("inconsistent shapes should error")
	}
	padMismatch := []Share{{X: 1, Data: []uint16{1}, Padded: true}, {X: 2, Data: []uint16{1}}}
	if _, err := Combine(padMismatch, 2); !errors.Is(err, ErrInconsistent) {
		t.Error("padding mismatch should error")
	}
}

func TestDuplicatesDontCount(t *testing.T) {
	r := rng.New(4)
	shares, _ := Split([]byte("secret"), 3, 5, r)
	if _, err := Combine([]Share{shares[0], shares[0], shares[0]}, 3); !errors.Is(err, ErrTooFewShares) {
		t.Error("duplicates satisfied the threshold")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed uint64, raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		rr := rng.New(seed)
		k := 1 + rr.Intn(6)
		n := k + rr.Intn(500)
		shares, err := Split(raw, k, n, rr)
		if err != nil {
			return false
		}
		perm := rr.Perm(n)[:k]
		subset := make([]Share, k)
		for i, idx := range perm {
			subset[i] = shares[idx]
		}
		got, err := Combine(subset, k)
		return err == nil && bytes.Equal(got, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWordPacking(t *testing.T) {
	for n := 1; n <= 9; n++ {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i + 1)
		}
		words, padded := toWords(b)
		got := fromWords(words, padded)
		if !bytes.Equal(got, b) {
			t.Errorf("word packing round trip failed for n=%d", n)
		}
		if padded != (n%2 != 0) {
			t.Errorf("padding flag wrong for n=%d", n)
		}
	}
}
