package shamir16

import (
	"errors"
	"fmt"
	"sync"

	"lemonade/internal/gf16"
	"lemonade/internal/rng"
)

// scratch mirrors package shamir's: coefficient rows and survivor
// bookkeeping, recycled through scratchPool. Every buffer is re-sliced and
// fully written before use, so pool hits and misses are indistinguishable
// in output.
type scratch struct {
	arena  []uint16
	rows   [][]uint16
	words  []uint16
	out    []uint16
	xs     []uint16
	coeffs []uint16
	dist   []int
	seen   []byte // X-coordinate bitset, 2^16 bits
}

// scratchPool's New field is the deterministic fallback: misses construct
// a zero scratch grown on demand.
var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func growWords(b []uint16, n int) []uint16 {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]uint16, n)
}

func growInts(b []int, n int) []int {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]int, n)
}

func (s *scratch) rowBuf(rows, width int) [][]uint16 {
	s.arena = growWords(s.arena, rows*width)
	if cap(s.rows) < rows {
		s.rows = make([][]uint16, rows)
	}
	rs := s.rows[:rows]
	for i := range rs {
		rs[i] = s.arena[i*width : (i+1)*width]
	}
	return rs
}

// toWordsInto packs bytes big-endian into dst (grown as needed), mirroring
// toWords without the allocation. Even-index bytes assign the whole word,
// so reused buffers carry no stale low bytes.
func toWordsInto(dst []uint16, b []byte) ([]uint16, bool) {
	dst = growWords(dst, (len(b)+1)/2)
	for i := 0; i < len(b); i++ {
		if i%2 == 0 {
			dst[i/2] = uint16(b[i]) << 8
		} else {
			dst[i/2] |= uint16(b[i])
		}
	}
	return dst, len(b)%2 != 0
}

// SplitInto is the destination-buffer form of Split: shares must have
// length n; Data arrays are reused when capacity allows. RNG draws match
// Split exactly — one word per (secret word, degree) pair, degree-major —
// so both paths emit bit-identical shares from equal RNG states.
func SplitInto(secret []byte, shares []Share, k, n int, r *rng.RNG) error {
	if k < 1 {
		return fmt.Errorf("shamir16: threshold k must be >= 1, got %d", k)
	}
	if n < k {
		return fmt.Errorf("shamir16: n (%d) must be >= k (%d)", n, k)
	}
	if n > MaxShares {
		return fmt.Errorf("shamir16: n must be <= %d, got %d", MaxShares, n)
	}
	if len(secret) == 0 {
		return errors.New("shamir16: empty secret")
	}
	if len(shares) != n {
		return fmt.Errorf("shamir16: destination holds %d shares, need n=%d", len(shares), n)
	}
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	var padded bool
	sc.words, padded = toWordsInto(sc.words, secret)
	words := sc.words
	for i := range shares {
		shares[i].X = uint16(i + 1)
		shares[i].Data = growWords(shares[i].Data, len(words))
		shares[i].Padded = padded
	}
	rows := sc.rowBuf(k-1, len(words))
	for w := range words {
		for j := 1; j < k; j++ {
			rows[j-1][w] = uint16(r.Intn(1 << 16))
		}
	}
	for i := range shares {
		d := shares[i].Data
		copy(d, words)
		x := shares[i].X
		pw := x
		for j := 0; j < k-1; j++ {
			gf16.MulSliceAdd(d, rows[j], pw)
			pw = gf16.Mul(pw, x)
		}
	}
	return nil
}

// CombineInto reconstructs the secret from at least k distinct shares into
// dst, returning the number of bytes written (2·words, minus one if the
// secret was padded). dst must be at least that long.
func CombineInto(shares []Share, k int, dst []byte) (int, error) {
	if k < 1 {
		return 0, fmt.Errorf("shamir16: threshold k must be >= 1, got %d", k)
	}
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	if sc.seen == nil {
		sc.seen = make([]byte, 1<<16/8)
	}
	seen := sc.seen
	dist := growInts(sc.dist, k)[:0]
	// The bitset is cleared after use (not before) so repeat calls on a
	// pooled scratch start clean; track and undo the bits we set.
	defer func() {
		for _, si := range dist {
			x := shares[si].X
			seen[x>>3] &^= 1 << (x & 7)
		}
	}()
	for si := range shares {
		x := shares[si].X
		if x == 0 {
			return 0, errors.New("shamir16: share with x=0 is invalid")
		}
		if seen[x>>3]&(1<<(x&7)) != 0 {
			continue
		}
		seen[x>>3] |= 1 << (x & 7)
		dist = append(dist, si)
		if len(dist) == k {
			break
		}
	}
	sc.dist = dist
	if len(dist) < k {
		return 0, fmt.Errorf("%w: have %d distinct, need %d", ErrTooFewShares, len(dist), k)
	}
	words := len(shares[dist[0]].Data)
	padded := shares[dist[0]].Padded
	for _, si := range dist {
		if len(shares[si].Data) != words || shares[si].Padded != padded {
			return 0, ErrInconsistent
		}
	}
	outLen := 2 * words
	if padded && outLen > 0 {
		outLen--
	}
	if len(dst) < outLen {
		return 0, fmt.Errorf("shamir16: dst holds %d bytes, need %d", len(dst), outLen)
	}
	sc.xs = growWords(sc.xs, k)
	sc.coeffs = growWords(sc.coeffs, k)
	for i, si := range dist {
		sc.xs[i] = shares[si].X
	}
	if err := gf16.LagrangeCoeffs(sc.xs, 0, sc.coeffs); err != nil {
		return 0, err
	}
	sc.out = growWords(sc.out, words)
	out := sc.out
	for i := range out {
		out[i] = 0
	}
	for i, si := range dist {
		gf16.MulSliceAdd(out, shares[si].Data, sc.coeffs[i])
	}
	for i, w := range out {
		dst[2*i] = byte(w >> 8)
		if 2*i+1 < outLen {
			dst[2*i+1] = byte(w)
		}
	}
	return outLen, nil
}
