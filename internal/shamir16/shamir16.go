// Package shamir16 is Shamir's (k, n) threshold secret sharing over
// GF(2^16): functionally identical to package shamir but supporting up to
// 65,535 shares, as needed by the wide parallel structures of the paper's
// low-β designs (a β=4 connection structure has thousands of devices).
//
// Secrets are byte strings; they are processed as 16-bit words (odd-length
// secrets carry a one-byte pad recorded in each share).
package shamir16

import (
	"errors"
	"fmt"

	"lemonade/internal/gf16"
	"lemonade/internal/rng"
)

// MaxShares is the widest supported sharing.
const MaxShares = 1<<16 - 1

// Share is one component of a split secret.
type Share struct {
	X      uint16   // evaluation point, 1..n
	Data   []uint16 // q_i(X) per 16-bit secret word
	Padded bool     // the secret had odd length; last word's low byte is padding
}

var (
	// ErrTooFewShares mirrors shamir.ErrTooFewShares.
	ErrTooFewShares = errors.New("shamir16: not enough shares to reconstruct")
	// ErrInconsistent is returned when shares disagree on shape.
	ErrInconsistent = errors.New("shamir16: shares have inconsistent shapes")
)

// Split encodes secret into n shares with threshold k.
func Split(secret []byte, k, n int, r *rng.RNG) ([]Share, error) {
	if k < 1 {
		return nil, fmt.Errorf("shamir16: threshold k must be >= 1, got %d", k)
	}
	if n < k {
		return nil, fmt.Errorf("shamir16: n (%d) must be >= k (%d)", n, k)
	}
	if n > MaxShares {
		return nil, fmt.Errorf("shamir16: n must be <= %d, got %d", MaxShares, n)
	}
	if len(secret) == 0 {
		return nil, errors.New("shamir16: empty secret")
	}
	words, padded := toWords(secret)
	shares := make([]Share, n)
	for i := range shares {
		shares[i] = Share{X: uint16(i + 1), Data: make([]uint16, len(words)), Padded: padded}
	}
	coeffs := make(gf16.Polynomial, k)
	for w, s := range words {
		coeffs[0] = s
		for j := 1; j < k; j++ {
			coeffs[j] = uint16(r.Intn(1 << 16))
		}
		for i := range shares {
			shares[i].Data[w] = coeffs.Eval(shares[i].X)
		}
	}
	return shares, nil
}

// Combine reconstructs the secret from at least k distinct shares.
func Combine(shares []Share, k int) ([]byte, error) {
	if k < 1 {
		return nil, fmt.Errorf("shamir16: threshold k must be >= 1, got %d", k)
	}
	distinct := make([]Share, 0, k)
	seen := map[uint16]bool{}
	for _, s := range shares {
		if s.X == 0 {
			return nil, errors.New("shamir16: share with x=0 is invalid")
		}
		if seen[s.X] {
			continue
		}
		seen[s.X] = true
		distinct = append(distinct, s)
		if len(distinct) == k {
			break
		}
	}
	if len(distinct) < k {
		return nil, fmt.Errorf("%w: have %d distinct, need %d", ErrTooFewShares, len(distinct), k)
	}
	words := len(distinct[0].Data)
	padded := distinct[0].Padded
	for _, s := range distinct {
		if len(s.Data) != words || s.Padded != padded {
			return nil, ErrInconsistent
		}
	}
	xs := make([]uint16, k)
	for i, s := range distinct {
		xs[i] = s.X
	}
	out := make([]uint16, words)
	ys := make([]uint16, k)
	for w := 0; w < words; w++ {
		for i, s := range distinct {
			ys[i] = s.Data[w]
		}
		v, err := gf16.Interpolate(xs, ys, 0)
		if err != nil {
			return nil, err
		}
		out[w] = v
	}
	return fromWords(out, padded), nil
}

// toWords packs bytes big-endian into 16-bit words, padding odd lengths.
func toWords(b []byte) (words []uint16, padded bool) {
	padded = len(b)%2 != 0
	n := (len(b) + 1) / 2
	words = make([]uint16, n)
	for i := 0; i < len(b); i++ {
		if i%2 == 0 {
			words[i/2] = uint16(b[i]) << 8
		} else {
			words[i/2] |= uint16(b[i])
		}
	}
	return words, padded
}

// fromWords unpacks words back into bytes, trimming padding.
func fromWords(words []uint16, padded bool) []byte {
	out := make([]byte, 0, 2*len(words))
	for _, w := range words {
		out = append(out, byte(w>>8), byte(w))
	}
	if padded && len(out) > 0 {
		out = out[:len(out)-1]
	}
	return out
}
