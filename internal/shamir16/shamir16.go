// Package shamir16 is Shamir's (k, n) threshold secret sharing over
// GF(2^16): functionally identical to package shamir but supporting up to
// 65,535 shares, as needed by the wide parallel structures of the paper's
// low-β designs (a β=4 connection structure has thousands of devices).
//
// Secrets are byte strings; they are processed as 16-bit words (odd-length
// secrets carry a one-byte pad recorded in each share).
package shamir16

import (
	"errors"

	"lemonade/internal/rng"
)

// MaxShares is the widest supported sharing.
const MaxShares = 1<<16 - 1

// Share is one component of a split secret.
type Share struct {
	X      uint16   // evaluation point, 1..n
	Data   []uint16 // q_i(X) per 16-bit secret word
	Padded bool     // the secret had odd length; last word's low byte is padding
}

var (
	// ErrTooFewShares mirrors shamir.ErrTooFewShares.
	ErrTooFewShares = errors.New("shamir16: not enough shares to reconstruct")
	// ErrInconsistent is returned when shares disagree on shape.
	ErrInconsistent = errors.New("shamir16: shares have inconsistent shapes")
)

// Split encodes secret into n shares with threshold k. It is the
// allocating wrapper around SplitInto.
func Split(secret []byte, k, n int, r *rng.RNG) ([]Share, error) {
	var shares []Share
	if k >= 1 && n >= k && n <= MaxShares {
		shares = make([]Share, n)
	}
	if err := SplitInto(secret, shares, k, n, r); err != nil {
		return nil, err
	}
	return shares, nil
}

// Combine reconstructs the secret from at least k distinct shares. It is
// the allocating wrapper around CombineInto; the first share's word count
// sizes the destination, which the consistency check then holds every
// used share to.
func Combine(shares []Share, k int) ([]byte, error) {
	var dst []byte
	if len(shares) > 0 {
		dst = make([]byte, 2*len(shares[0].Data))
	} else {
		dst = []byte{}
	}
	n, err := CombineInto(shares, k, dst)
	if err != nil {
		return nil, err
	}
	return dst[:n], nil
}

// toWords packs bytes big-endian into 16-bit words, padding odd lengths.
func toWords(b []byte) (words []uint16, padded bool) {
	padded = len(b)%2 != 0
	n := (len(b) + 1) / 2
	words = make([]uint16, n)
	for i := 0; i < len(b); i++ {
		if i%2 == 0 {
			words[i/2] = uint16(b[i]) << 8
		} else {
			words[i/2] |= uint16(b[i])
		}
	}
	return words, padded
}

// fromWords unpacks words back into bytes, trimming padding.
func fromWords(words []uint16, padded bool) []byte {
	out := make([]byte, 0, 2*len(words))
	for _, w := range words {
		out = append(out, byte(w>>8), byte(w))
	}
	if padded && len(out) > 0 {
		out = out[:len(out)-1]
	}
	return out
}
