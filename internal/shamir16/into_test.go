package shamir16

import (
	"bytes"
	"testing"

	"lemonade/internal/rng"
)

func TestIntoMatchesWrappers(t *testing.T) {
	for _, secretLen := range []int{1, 2, 31, 64} {
		secret := make([]byte, secretLen)
		for i := range secret {
			secret[i] = byte(i*13 + 5)
		}
		const k, n = 7, 40
		want, err := Split(secret, k, n, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		shares := make([]Share, n)
		for i := range shares {
			shares[i].X = 0xEEEE
			shares[i].Padded = true
			if i%2 == 0 {
				shares[i].Data = make([]uint16, 3+i)
			}
		}
		if err := SplitInto(secret, shares, k, n, rng.New(3)); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if shares[i].X != want[i].X || shares[i].Padded != want[i].Padded {
				t.Fatalf("len=%d: share %d header differs", secretLen, i)
			}
			for w := range want[i].Data {
				if shares[i].Data[w] != want[i].Data[w] {
					t.Fatalf("len=%d: share %d word %d differs", secretLen, i, w)
				}
			}
		}
		pick := []Share{shares[n-1], shares[2], shares[n-1], shares[9], shares[0], shares[17], shares[4], shares[33]}
		wantSecret, err := Combine(pick, k)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantSecret, secret) {
			t.Fatal("Combine did not round-trip")
		}
		dst := bytes.Repeat([]byte{0xDB}, len(secret)+4)
		gotN, err := CombineInto(pick, k, dst)
		if err != nil {
			t.Fatal(err)
		}
		if gotN != len(wantSecret) || !bytes.Equal(dst[:gotN], wantSecret) {
			t.Fatalf("len=%d: CombineInto differs from Combine", secretLen)
		}
	}
}

func TestIntoNoAllocsSteadyState(t *testing.T) {
	secret := make([]byte, 33) // odd: exercises the padding path
	for i := range secret {
		secret[i] = byte(i)
	}
	const k, n = 6, 50
	shares := make([]Share, n)
	r := rng.New(8)
	if err := SplitInto(secret, shares, k, n, r); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(secret))
	if a := testing.AllocsPerRun(200, func() {
		if err := SplitInto(secret, shares, k, n, r); err != nil {
			t.Fatal(err)
		}
	}); a >= 1 {
		t.Errorf("SplitInto steady state allocates %v times per call", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		if _, err := CombineInto(shares, k, dst); err != nil {
			t.Fatal(err)
		}
	}); a >= 1 {
		t.Errorf("CombineInto steady state allocates %v times per call", a)
	}
}
