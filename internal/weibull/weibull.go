// Package weibull implements the two-parameter Weibull wearout model of
// §2.2 of the paper (Eqs 1–3): the probability density, cumulative
// distribution and reliability functions of the time-to-failure of a NEMS
// contact switch, together with quantiles, moments, random sampling, and
// maximum-likelihood fitting from (possibly right-censored) lifetime data.
//
// Time is measured in actuation cycles throughout, matching the paper:
// "time to failure" of a NEMS switch is the number of open/close cycles it
// survives.
package weibull

import (
	"errors"
	"fmt"
	"math"

	"lemonade/internal/mathx"
	"lemonade/internal/rng"
)

// Dist is a two-parameter Weibull distribution with scale alpha (cycles)
// and shape beta (dimensionless). Alpha approximates the mean time to
// failure; beta controls the consistency of wearout across devices —
// larger beta means a sharper failure peak (paper Fig 1).
type Dist struct {
	Alpha float64 // scale parameter α > 0, in cycles
	Beta  float64 // shape parameter β > 0
}

// New returns the distribution after validating the parameters.
func New(alpha, beta float64) (Dist, error) {
	d := Dist{Alpha: alpha, Beta: beta}
	if err := d.Validate(); err != nil {
		return Dist{}, err
	}
	return d, nil
}

// MustNew is New but panics on invalid parameters; for literals in tests
// and experiment tables.
func MustNew(alpha, beta float64) Dist {
	d, err := New(alpha, beta)
	if err != nil {
		panic(err) //lemonvet:allow panic Must-prefix constructor; documented to panic on invalid literals
	}
	return d
}

// Validate reports whether the parameters define a proper distribution.
func (d Dist) Validate() error {
	if !(d.Alpha > 0) || math.IsInf(d.Alpha, 0) || math.IsNaN(d.Alpha) {
		return fmt.Errorf("weibull: scale alpha must be positive and finite, got %v", d.Alpha)
	}
	if !(d.Beta > 0) || math.IsInf(d.Beta, 0) || math.IsNaN(d.Beta) {
		return fmt.Errorf("weibull: shape beta must be positive and finite, got %v", d.Beta)
	}
	return nil
}

// String implements fmt.Stringer.
func (d Dist) String() string {
	return fmt.Sprintf("Weibull(α=%g, β=%g)", d.Alpha, d.Beta)
}

// PDF returns the failure probability density f(x) of Eq 1.
func (d Dist) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case d.Beta < 1:
			return math.Inf(1)
		case d.Beta == 1:
			return 1 / d.Alpha
		default:
			return 0
		}
	}
	z := x / d.Alpha
	return d.Beta / d.Alpha * math.Pow(z, d.Beta-1) * math.Exp(-math.Pow(z, d.Beta))
}

// CDF returns the failure probability F(x) of Eq 2, i.e. the probability the
// device has failed by time x.
func (d Dist) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/d.Alpha, d.Beta))
}

// Reliability returns R(x) = 1 - F(x) of Eq 3: the probability the device
// still works at time x. Computed directly from the exponential form so it
// stays accurate deep into the tail.
func (d Dist) Reliability(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Exp(-math.Pow(x/d.Alpha, d.Beta))
}

// LogReliability returns ln R(x) = -(x/α)^β without underflow.
func (d Dist) LogReliability(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Pow(x/d.Alpha, d.Beta)
}

// Hazard returns the instantaneous failure rate f(x)/R(x).
func (d Dist) Hazard(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		return d.PDF(0)
	}
	return d.Beta / d.Alpha * math.Pow(x/d.Alpha, d.Beta-1)
}

// Quantile returns the time x by which the failure probability reaches p,
// i.e. F(x) = p. It returns 0 for p <= 0 and +Inf for p >= 1.
func (d Dist) Quantile(p float64) float64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	return d.Alpha * math.Pow(-math.Log1p(-p), 1/d.Beta)
}

// Mean returns E[X] = α·Γ(1 + 1/β).
func (d Dist) Mean() float64 {
	return d.Alpha * math.Gamma(1+1/d.Beta)
}

// Variance returns Var[X] = α²(Γ(1+2/β) − Γ(1+1/β)²).
func (d Dist) Variance() float64 {
	g1 := math.Gamma(1 + 1/d.Beta)
	g2 := math.Gamma(1 + 2/d.Beta)
	return d.Alpha * d.Alpha * (g2 - g1*g1)
}

// Median returns the 50th percentile.
func (d Dist) Median() float64 { return d.Quantile(0.5) }

// Sample draws one time-to-failure by inverse-CDF sampling.
func (d Dist) Sample(r *rng.RNG) float64 {
	u := r.Float64Open()
	return d.Alpha * math.Pow(-math.Log(u), 1/d.Beta)
}

// SampleN draws n independent lifetimes. It is the allocating wrapper
// around SampleNInto.
func (d Dist) SampleN(r *rng.RNG, n int) []float64 {
	return d.SampleNInto(make([]float64, n), r)
}

// SampleNInto fills dst with len(dst) independent lifetimes and returns
// it — the destination-buffer form of SampleN for simulation loops that
// hold one sample arena per goroutine. Draw order matches SampleN, so for
// equal RNG states the two fill identical values.
func (d Dist) SampleNInto(dst []float64, r *rng.RNG) []float64 {
	for i := range dst {
		dst[i] = d.Sample(r)
	}
	return dst
}

// SampleCycles draws a lifetime and floors it to the whole number of
// actuations the device will complete successfully. A device with
// continuous lifetime X conducts its t-th actuation iff floor(X) >= t, i.e.
// with probability exactly R(t) — so the discrete simulator and the
// continuous analytic models (Eqs 3, 6, 8) agree without an off-by-one.
// A draw below one cycle yields a device that fails on its first actuation
// (infant mortality).
func (d Dist) SampleCycles(r *rng.RNG) uint64 {
	x := d.Sample(r)
	c := math.Floor(x)
	if c < 0 {
		return 0
	}
	if c > math.MaxUint64/2 {
		return math.MaxUint64 / 2
	}
	return uint64(c)
}

// DegradationWindow returns [t1, t2] such that R(t1) = hi and R(t2) = lo
// (hi > lo), i.e. the span over which reliability collapses from hi to lo.
// Fig 3a of the paper studies exactly this window.
func (d Dist) DegradationWindow(hi, lo float64) (t1, t2 float64) {
	return d.Quantile(1 - hi), d.Quantile(1 - lo)
}

// --- Fitting -----------------------------------------------------------------

// ErrInsufficientData is returned when fewer than two uncensored
// observations are available.
var ErrInsufficientData = errors.New("weibull: need at least two uncensored failures to fit")

// Obs is one lifetime observation. If Censored is true the device was still
// alive at Time (right censoring) — common when a wearout experiment stops
// before every device has failed.
type Obs struct {
	Time     float64
	Censored bool
}

// Fit estimates (alpha, beta) by maximum likelihood from the observations,
// supporting right censoring. The profile-likelihood equation in beta is
// solved by bisection; alpha follows in closed form.
func Fit(obs []Obs) (Dist, error) {
	var failures int
	for _, o := range obs {
		if o.Time <= 0 {
			return Dist{}, fmt.Errorf("weibull: non-positive observation time %g", o.Time)
		}
		if !o.Censored {
			failures++
		}
	}
	if failures < 2 {
		return Dist{}, ErrInsufficientData
	}

	// Profile likelihood: for X_i all observations (failures D, censored C),
	// g(β) = Σ_all t^β ln t / Σ_all t^β − 1/β − (1/|D|) Σ_D ln t = 0.
	g := func(beta float64) float64 {
		var num, den mathx.KahanSum
		var sumLogFail mathx.KahanSum
		for _, o := range obs {
			tb := math.Pow(o.Time, beta)
			lt := math.Log(o.Time)
			num.Add(tb * lt)
			den.Add(tb)
			if !o.Censored {
				sumLogFail.Add(lt)
			}
		}
		return num.Sum()/den.Sum() - 1/beta - sumLogFail.Sum()/float64(failures)
	}

	// Bracket the root. g is increasing in beta for Weibull data; scan
	// outward from a broad default range.
	lo, hi := 1e-3, 1.0
	for g(hi) < 0 && hi < 1e5 {
		hi *= 2
	}
	if g(hi) < 0 {
		return Dist{}, mathx.ErrNoConvergence
	}
	for g(lo) > 0 && lo > 1e-9 {
		lo /= 2
	}
	beta, err := mathx.Brent(g, lo, hi, 1e-10)
	if err != nil {
		return Dist{}, err
	}

	var den mathx.KahanSum
	for _, o := range obs {
		den.Add(math.Pow(o.Time, beta))
	}
	alpha := math.Pow(den.Sum()/float64(failures), 1/beta)
	return New(alpha, beta)
}

// FitLifetimes is Fit for fully observed (uncensored) lifetime data.
func FitLifetimes(times []float64) (Dist, error) {
	obs := make([]Obs, len(times))
	for i, t := range times {
		obs[i] = Obs{Time: t}
	}
	return Fit(obs)
}

// --- Process variation --------------------------------------------------------

// Variation models manufacturing/process variation across individual devices
// (§2.2): each fabricated device gets its own effective (α, β) drawn around
// the nominal distribution. CVAlpha/CVBeta are coefficients of variation of
// log-normal perturbations; zero disables that component.
type Variation struct {
	Nominal Dist
	CVAlpha float64 // coefficient of variation of per-device alpha
	CVBeta  float64 // coefficient of variation of per-device beta
}

// Draw samples the effective distribution of one manufactured device.
func (v Variation) Draw(r *rng.RNG) Dist {
	d := v.Nominal
	if v.CVAlpha > 0 {
		sigma := math.Sqrt(math.Log(1 + v.CVAlpha*v.CVAlpha))
		d.Alpha *= r.LogNormal(-sigma*sigma/2, sigma)
	}
	if v.CVBeta > 0 {
		sigma := math.Sqrt(math.Log(1 + v.CVBeta*v.CVBeta))
		d.Beta *= r.LogNormal(-sigma*sigma/2, sigma)
	}
	if d.Alpha <= 0 {
		d.Alpha = math.SmallestNonzeroFloat64
	}
	if d.Beta <= 0 {
		d.Beta = math.SmallestNonzeroFloat64
	}
	return d
}

// --- Reference parameter sets ---------------------------------------------------

// A NamedModel is a literature-derived (α, β) pair used in the paper's
// discussion of realistic device populations.
type NamedModel struct {
	Name string
	Dist Dist
}

// SlackMEMSModels are the Weibull lifetime models simulated by Slack et al.
// for LIGA Ni MEMS devices, quoted in §2.2 of the paper: geometrical
// variations only, material elasticity variations, and material resistance
// variations.
func SlackMEMSModels() []NamedModel {
	return []NamedModel{
		{Name: "geometrical", Dist: MustNew(2.6e6, 12.94)},
		{Name: "elasticity", Dist: MustNew(2.2e6, 7.2)},
		{Name: "resistance", Dist: MustNew(1.8e6, 8.58)},
	}
}

// ConditionalReliability returns P(X > s + t | X > s): the probability a
// device that has already survived s cycles survives t more. For β > 1
// (wearout-dominated devices) this decreases with age — the property the
// health monitor and migration planners rely on.
func (d Dist) ConditionalReliability(age, t float64) float64 {
	if age < 0 {
		age = 0
	}
	if t <= 0 {
		return 1
	}
	return math.Exp(d.LogReliability(age+t) - d.LogReliability(age))
}

// PercentileLife returns the B(p) life: the age by which a fraction p of
// devices has failed (e.g. PercentileLife(0.10) is the reliability
// engineer's B10 life). It is an alias of Quantile with the conventional
// name.
func (d Dist) PercentileLife(p float64) float64 { return d.Quantile(p) }

// MeanResidualLife returns E[X − age | X > age], integrated numerically
// from the conditional reliability (Simpson's rule over an adaptive
// horizon).
func (d Dist) MeanResidualLife(age float64) float64 {
	if age < 0 {
		age = 0
	}
	// integrate R(age+t)/R(age) dt from 0 until negligible
	horizon := d.Quantile(1 - 1e-12)
	if horizon <= age {
		horizon = age + d.Alpha
	}
	upper := horizon - age
	const steps = 4096
	h := upper / steps
	var sum mathx.KahanSum
	for i := 0; i <= steps; i++ {
		w := 2.0
		switch {
		case i == 0 || i == steps:
			w = 1
		case i%2 == 1:
			w = 4
		}
		sum.Add(w * d.ConditionalReliability(age, float64(i)*h))
	}
	return sum.Sum() * h / 3
}
