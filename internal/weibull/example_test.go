package weibull_test

import (
	"fmt"

	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

// ExampleDist_Reliability evaluates the paper's Eq 3 at the Fig 3a
// operating point: α=1.7, β=12 gives a sub-cycle degradation window.
func ExampleDist_Reliability() {
	d := weibull.MustNew(1.7, 12)
	fmt.Printf("R(1) = %.4f\n", d.Reliability(1))
	fmt.Printf("R(2) = %.6f\n", d.Reliability(2))
	// Output:
	// R(1) = 0.9983
	// R(2) = 0.000885
}

// ExampleFit recovers process parameters from destructive lifetime
// testing — the characterization step every deployment starts with.
func ExampleFit() {
	truth := weibull.MustNew(14, 8)
	r := rng.New(99)
	times := truth.SampleN(r, 20000)
	fitted, err := weibull.FitLifetimes(times)
	if err != nil {
		panic(err)
	}
	fmt.Printf("alpha within 2%%: %v\n", fitted.Alpha > 13.7 && fitted.Alpha < 14.3)
	fmt.Printf("beta within 5%%: %v\n", fitted.Beta > 7.6 && fitted.Beta < 8.4)
	// Output:
	// alpha within 2%: true
	// beta within 5%: true
}
