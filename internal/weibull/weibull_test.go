package weibull

import (
	"math"
	"testing"
	"testing/quick"

	"lemonade/internal/montecarlo"
	"lemonade/internal/rng"
)

func almostEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("alpha=0 should be rejected")
	}
	if _, err := New(1, 0); err == nil {
		t.Error("beta=0 should be rejected")
	}
	if _, err := New(-2, 3); err == nil {
		t.Error("negative alpha should be rejected")
	}
	if _, err := New(math.NaN(), 3); err == nil {
		t.Error("NaN alpha should be rejected")
	}
	if _, err := New(10, 2); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid params")
		}
	}()
	MustNew(-1, 1)
}

func TestExponentialSpecialCase(t *testing.T) {
	// beta=1 reduces to Exponential(1/alpha)
	d := MustNew(10, 1)
	for _, x := range []float64{0.5, 1, 5, 20} {
		if got, want := d.CDF(x), 1-math.Exp(-x/10); !almostEq(got, want, 1e-12) {
			t.Errorf("CDF(%g) = %g, want %g", x, got, want)
		}
		if got, want := d.PDF(x), math.Exp(-x/10)/10; !almostEq(got, want, 1e-12) {
			t.Errorf("PDF(%g) = %g, want %g", x, got, want)
		}
	}
	if !almostEq(d.Mean(), 10, 1e-12) {
		t.Errorf("exponential mean = %g, want 10", d.Mean())
	}
	if !almostEq(d.Variance(), 100, 1e-9) {
		t.Errorf("exponential variance = %g, want 100", d.Variance())
	}
}

func TestCDFReliabilityComplement(t *testing.T) {
	d := MustNew(14, 8)
	for _, x := range []float64{0, 1, 5, 10, 14, 20, 30} {
		if s := d.CDF(x) + d.Reliability(x); !almostEq(s, 1, 1e-12) {
			t.Errorf("CDF+R at x=%g is %g", x, s)
		}
	}
}

func TestReliabilityAtAlpha(t *testing.T) {
	// R(alpha) = 1/e regardless of beta
	for _, beta := range []float64{0.5, 1, 4, 12} {
		d := MustNew(42, beta)
		if got := d.Reliability(42); !almostEq(got, 1/math.E, 1e-12) {
			t.Errorf("R(alpha) = %g for beta=%g, want 1/e", got, beta)
		}
	}
}

func TestPDFIntegratesToCDF(t *testing.T) {
	d := MustNew(9.3, 12)
	// trapezoid integral of PDF from 0 to x should match CDF(x)
	x := 11.0
	const steps = 200000
	h := x / steps
	sum := 0.5 * (d.PDF(0) + d.PDF(x))
	for i := 1; i < steps; i++ {
		sum += d.PDF(float64(i) * h)
	}
	integral := sum * h
	if !almostEq(integral, d.CDF(x), 1e-6) {
		t.Errorf("∫pdf = %g, CDF = %g", integral, d.CDF(x))
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	d := MustNew(20, 12)
	for _, p := range []float64{0.001, 0.01, 0.5, 0.9, 0.999} {
		x := d.Quantile(p)
		if !almostEq(d.CDF(x), p, 1e-10) {
			t.Errorf("CDF(Quantile(%g)) = %g", p, d.CDF(x))
		}
	}
	if d.Quantile(0) != 0 {
		t.Error("Quantile(0) != 0")
	}
	if !math.IsInf(d.Quantile(1), 1) {
		t.Error("Quantile(1) should be +Inf")
	}
}

func TestQuantileProperty(t *testing.T) {
	f := func(a, b, p float64) bool {
		alpha := 1 + math.Abs(math.Mod(a, 100))
		beta := 0.5 + math.Abs(math.Mod(b, 15))
		pp := math.Abs(math.Mod(p, 1))
		if pp == 0 {
			return true
		}
		d := MustNew(alpha, beta)
		x := d.Quantile(pp)
		return almostEq(d.CDF(x), pp, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLogReliabilityDeepTail(t *testing.T) {
	d := MustNew(10, 8)
	// at x = 40, (x/alpha)^beta = 4^8 = 65536 — Reliability underflows but
	// LogReliability must not.
	if got := d.LogReliability(40); !almostEq(got, -65536, 1e-9) {
		t.Errorf("LogReliability(40) = %g, want -65536", got)
	}
	if d.Reliability(40) != 0 {
		t.Log("note: linear-space reliability underflowed to 0 as expected")
	}
	if d.LogReliability(0) != 0 {
		t.Error("LogReliability(0) should be 0")
	}
}

func TestHazardMonotoneForBetaAboveOne(t *testing.T) {
	d := MustNew(10, 3)
	prev := -1.0
	for x := 0.5; x < 30; x += 0.5 {
		h := d.Hazard(x)
		if h < prev {
			t.Fatalf("hazard decreased at x=%g for beta>1", x)
		}
		prev = h
	}
}

func TestMeanMatchesSampleMean(t *testing.T) {
	d := MustNew(14, 8)
	r := rng.New(101)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	mean := sum / n
	if !almostEq(mean, d.Mean(), 0.01) {
		t.Errorf("sample mean %g vs analytic %g", mean, d.Mean())
	}
}

func TestSampleDistributionKS(t *testing.T) {
	// Kolmogorov-Smirnov style check: empirical CDF close to analytic.
	d := MustNew(10, 2)
	r := rng.New(55)
	const n = 50000
	samples := d.SampleN(r, n)
	for _, x := range []float64{3, 7, 10, 15} {
		count := 0
		for _, s := range samples {
			if s <= x {
				count++
			}
		}
		emp := float64(count) / n
		if math.Abs(emp-d.CDF(x)) > 0.01 {
			t.Errorf("empirical CDF(%g) = %g, analytic %g", x, emp, d.CDF(x))
		}
	}
}

func TestSampleCyclesFloorSemantics(t *testing.T) {
	// P(SampleCycles >= t) must equal R(t): the floor discretization makes
	// the simulator agree exactly with the continuous reliability model.
	d := MustNew(10, 4)
	r := rng.New(7)
	const n = 100000
	counts := make(map[uint64]int)
	for i := 0; i < n; i++ {
		counts[d.SampleCycles(r)]++
	}
	for _, tt := range []uint64{1, 5, 10, 12} {
		atLeast := 0
		for c, cnt := range counts {
			if c >= tt {
				atLeast += cnt
			}
		}
		emp := float64(atLeast) / n
		if math.Abs(emp-d.Reliability(float64(tt))) > 0.01 {
			t.Errorf("P(cycles >= %d) = %g, want R(%d) = %g", tt, emp, tt, d.Reliability(float64(tt)))
		}
	}
	// infant mortality: a sub-cycle distribution yields zero-cycle devices
	tiny := MustNew(0.01, 1)
	zeros := 0
	for i := 0; i < 100; i++ {
		if tiny.SampleCycles(r) == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Error("expected zero-cycle draws from a sub-cycle distribution")
	}
}

func TestDegradationWindow(t *testing.T) {
	d := MustNew(1.7, 12) // Fig 3a parameters
	t1, t2 := d.DegradationWindow(0.99, 0.01)
	if t1 >= t2 {
		t.Fatalf("window inverted: [%g, %g]", t1, t2)
	}
	if !almostEq(d.Reliability(t1), 0.99, 1e-9) || !almostEq(d.Reliability(t2), 0.01, 1e-9) {
		t.Errorf("window endpoints wrong: R(t1)=%g R(t2)=%g", d.Reliability(t1), d.Reliability(t2))
	}
	// Paper: α=1.7, β=12 gives reliability ~1 at t=1 and ~0 at t=2.
	if d.Reliability(1) < 0.99 {
		t.Errorf("R(1) = %g, paper expects close to 1", d.Reliability(1))
	}
	if d.Reliability(2) > 0.05 {
		t.Errorf("R(2) = %g, paper expects close to 0", d.Reliability(2))
	}
}

func TestFitRecoverParams(t *testing.T) {
	truth := MustNew(14, 8)
	r := rng.New(99)
	times := truth.SampleN(r, 20000)
	got, err := FitLifetimes(times)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got.Alpha, truth.Alpha, 0.02) {
		t.Errorf("fit alpha = %g, want ~%g", got.Alpha, truth.Alpha)
	}
	if !almostEq(got.Beta, truth.Beta, 0.05) {
		t.Errorf("fit beta = %g, want ~%g", got.Beta, truth.Beta)
	}
}

func TestFitWithCensoring(t *testing.T) {
	truth := MustNew(20, 5)
	r := rng.New(123)
	const n = 20000
	cutoff := truth.Quantile(0.7) // censor the top 30%
	obs := make([]Obs, n)
	for i := range obs {
		x := truth.Sample(r)
		if x > cutoff {
			obs[i] = Obs{Time: cutoff, Censored: true}
		} else {
			obs[i] = Obs{Time: x}
		}
	}
	got, err := Fit(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(got.Alpha, truth.Alpha, 0.05) {
		t.Errorf("censored fit alpha = %g, want ~%g", got.Alpha, truth.Alpha)
	}
	if !almostEq(got.Beta, truth.Beta, 0.1) {
		t.Errorf("censored fit beta = %g, want ~%g", got.Beta, truth.Beta)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitLifetimes([]float64{5}); err != ErrInsufficientData {
		t.Errorf("single point should be insufficient, got %v", err)
	}
	if _, err := FitLifetimes([]float64{1, -2}); err == nil {
		t.Error("negative time should error")
	}
	if _, err := Fit([]Obs{{Time: 3, Censored: true}, {Time: 4, Censored: true}}); err != ErrInsufficientData {
		t.Error("all-censored data should be insufficient")
	}
}

func TestVariationDraw(t *testing.T) {
	v := Variation{Nominal: MustNew(14, 8), CVAlpha: 0.1, CVBeta: 0.05}
	r := rng.New(77)
	const n = 50000
	var sumA, sumB float64
	for i := 0; i < n; i++ {
		d := v.Draw(r)
		if d.Validate() != nil {
			t.Fatal("variation produced invalid dist")
		}
		sumA += d.Alpha
		sumB += d.Beta
	}
	// log-normal with mean-one correction: E[multiplier] = 1
	if !almostEq(sumA/n, 14, 0.02) {
		t.Errorf("mean alpha under variation = %g, want ~14", sumA/n)
	}
	if !almostEq(sumB/n, 8, 0.02) {
		t.Errorf("mean beta under variation = %g, want ~8", sumB/n)
	}
}

func TestVariationZeroIsIdentity(t *testing.T) {
	v := Variation{Nominal: MustNew(10, 12)}
	r := rng.New(1)
	d := v.Draw(r)
	if d != v.Nominal {
		t.Errorf("zero variation should return nominal, got %v", d)
	}
}

func TestSlackMEMSModels(t *testing.T) {
	models := SlackMEMSModels()
	if len(models) != 3 {
		t.Fatalf("expected 3 Slack models, got %d", len(models))
	}
	// paper quotes: 2.6M/12.94 geometrical, 2.2M/7.2 elasticity, 1.8M/8.58 resistance
	if models[0].Dist.Alpha != 2.6e6 || models[0].Dist.Beta != 12.94 {
		t.Errorf("geometrical model wrong: %v", models[0].Dist)
	}
	for _, m := range models {
		if err := m.Dist.Validate(); err != nil {
			t.Errorf("model %s invalid: %v", m.Name, err)
		}
	}
}

func TestStringer(t *testing.T) {
	s := MustNew(10, 2).String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestSamplingPassesKSTest(t *testing.T) {
	// Goodness of fit of the sampler against the analytic CDF, the
	// strongest form of the sampler-correctness argument.
	d := MustNew(14, 8)
	r := rng.New(314)
	samples := d.SampleN(r, 5000)
	stat, p, err := montecarlo.KolmogorovSmirnov(samples, d.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("KS rejects the Weibull sampler: D=%g p=%g", stat, p)
	}
}

func TestConditionalReliability(t *testing.T) {
	d := MustNew(14, 8)
	// consistency with the unconditional function at age 0
	for _, x := range []float64{1, 5, 10, 15} {
		if !almostEq(d.ConditionalReliability(0, x), d.Reliability(x), 1e-12) {
			t.Errorf("age-0 conditional mismatch at %g", x)
		}
	}
	// wearout (β>1): older devices are less likely to survive the same span
	young := d.ConditionalReliability(2, 5)
	old := d.ConditionalReliability(12, 5)
	if old >= young {
		t.Errorf("aged device should be frailer: young %g, old %g", young, old)
	}
	// memoryless special case β=1
	e := MustNew(10, 1)
	if !almostEq(e.ConditionalReliability(7, 3), e.Reliability(3), 1e-12) {
		t.Error("exponential should be memoryless")
	}
	if d.ConditionalReliability(5, 0) != 1 {
		t.Error("zero span should be certain survival")
	}
	if d.ConditionalReliability(-3, 2) != d.Reliability(2) {
		t.Error("negative age should clamp to 0")
	}
}

func TestPercentileLife(t *testing.T) {
	d := MustNew(14, 8)
	b10 := d.PercentileLife(0.10)
	if !almostEq(d.CDF(b10), 0.10, 1e-9) {
		t.Errorf("B10 life inconsistent: CDF(%g) = %g", b10, d.CDF(b10))
	}
}

func TestMeanResidualLife(t *testing.T) {
	d := MustNew(14, 8)
	// at age 0 the MRL equals the mean
	if mrl := d.MeanResidualLife(0); !almostEq(mrl, d.Mean(), 1e-3) {
		t.Errorf("MRL(0) = %g, mean = %g", mrl, d.Mean())
	}
	// wearout: MRL decreases with age
	if d.MeanResidualLife(12) >= d.MeanResidualLife(4) {
		t.Error("MRL should fall with age for β>1")
	}
	// exponential: MRL constant = mean
	e := MustNew(10, 1)
	if mrl := e.MeanResidualLife(25); !almostEq(mrl, 10, 1e-3) {
		t.Errorf("exponential MRL = %g, want 10", mrl)
	}
}

// TestSampleNIntoMatchesSampleN pins the destination-buffer sampler to the
// allocating one: equal RNG states must yield identical draws, and the
// fill itself must not allocate.
func TestSampleNIntoMatchesSampleN(t *testing.T) {
	d := MustNew(14, 8)
	want := d.SampleN(rng.New(5), 257)
	dst := make([]float64, 257)
	got := d.SampleNInto(dst, rng.New(5))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d differs: SampleNInto %g, SampleN %g", i, got[i], want[i])
		}
	}
	r := rng.New(6)
	if a := testing.AllocsPerRun(100, func() { d.SampleNInto(dst, r) }); a != 0 {
		t.Fatalf("SampleNInto allocates %.1f times per call, want 0", a)
	}
}
