// Package wal gives lemonaded's wearout state the durability the paper
// assumes of real hardware.
//
// The paper's security argument (§3, §6) is that device wearout
// *physically* enforces a maximum number of uses: state lives in the
// devices themselves, so power-cycling the system cannot refund consumed
// accesses. A simulator that keeps wear in process memory breaks that
// argument — restarting the daemon is exactly the "reset the counter"
// attack that motivates wearout over software counters. This package is
// the simulator's non-volatile substrate: an append-only, CRC-framed,
// fsync-on-commit write-ahead log of provision/access events plus
// periodic compacted snapshots, from which a restarted daemon recovers
// bit-identical architecture state.
//
// # Log-ahead rule
//
// DiskStore implements registry.Store: every provision and every access
// is durably appended (written, framed, fsynced) *before* it takes
// effect in memory. An access whose record cannot be made durable fails
// closed — no wearout is consumed and no key bytes are revealed. Once
// the record is durable the access is committed: a crash at any later
// point replays it on recovery, so the budget can only ever be consumed,
// never refunded. The done-callback in the Store contract holds a
// snapshot barrier open from append until the in-memory effect lands,
// which is what makes snapshots consistent with a log position.
//
// # On-disk layout
//
// A data directory holds numbered log segments and snapshots:
//
//	wal-00000001.log   frame* — segment 1 (the current segment is the
//	wal-00000002.log   highest-numbered one; lower ones are sealed)
//	snap-00000002.snap one frame — state at the instant segment 2 began
//
// Every frame is [len u32le][crc32(payload) u32le][payload]; payloads
// are JSON for debuggability (corrupted state must be diagnosable with
// od and jq at 3am). A snapshot with epoch E captures all effects of
// segments < E, so recovery is: load the newest snapshot, replay
// segments ≥ E in order, truncate a torn tail on the final segment.
// Snapshotting rotates to a fresh segment first, then writes the
// snapshot via tmp-file + atomic rename, then deletes obsolete files —
// a crash between any two steps leaves a recoverable directory.
//
// # Torn tail vs corruption
//
// A crash mid-append leaves an incomplete final frame (the length field
// promises more bytes than the file holds). That is expected damage:
// recovery truncates it and the lost record is an access that never
// revealed anything (its done-callback never ran, so the HTTP response
// never left the process). A frame whose bytes are all present but whose
// CRC does not match is a different animal — bit rot or tampering — and
// recovery refuses to serve, reporting the segment, record index, and
// byte offset, because serving from silently-wrong wear state would
// break the only security property this system has.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	// frameHeader is the [len u32le][crc u32le] prefix of every frame.
	frameHeader = 8
	// maxRecordLen caps a frame payload. A corrupt length field larger
	// than this is classified as corruption, not as a torn tail — without
	// the cap, a flipped high bit in a mid-file length could swallow every
	// record after it into a bogus "torn tail" truncation.
	maxRecordLen = 16 << 20
)

// CorruptionError reports a frame whose content is provably damaged (bad
// CRC, absurd length, or a record referencing unknown state). Recovery
// fails closed on it.
type CorruptionError struct {
	File   string // file the damage is in
	Record int    // 0-based frame index within the file
	Offset int64  // byte offset of the damaged frame
	Reason string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("wal: %s: record %d at offset %d: %s (refusing to serve from damaged state)",
		e.File, e.Record, e.Offset, e.Reason)
}

// appendFrame appends one framed payload to buf and returns it.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// scanFrames walks the framed records in data, calling fn for each valid
// payload. It returns good, the byte length of the valid prefix, and
// torn, the number of trailing bytes that form an incomplete final frame
// (0 when the file ends exactly on a frame boundary). A frame that is
// fully present but fails its CRC, or that declares an impossible
// length, yields a *CorruptionError; the caller decides whether a torn
// tail is acceptable (it is only ever acceptable on the final segment).
func scanFrames(file string, data []byte, fn func(payload []byte) error) (good, torn int64, err error) {
	off := int64(0)
	size := int64(len(data))
	for rec := 0; ; rec++ {
		if size-off == 0 {
			return off, 0, nil
		}
		if size-off < frameHeader {
			return off, size - off, nil // header itself torn
		}
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordLen {
			return off, 0, &CorruptionError{File: file, Record: rec, Offset: off,
				Reason: fmt.Sprintf("frame length %d exceeds the %d-byte cap", n, maxRecordLen)}
		}
		if off+frameHeader+n > size {
			return off, size - off, nil // payload torn
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return off, 0, &CorruptionError{File: file, Record: rec, Offset: off,
				Reason: fmt.Sprintf("CRC mismatch: frame declares %08x, payload hashes to %08x", crc, got)}
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, 0, err
			}
		}
		off += frameHeader + n
	}
}
