package wal

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/registry"
	"lemonade/internal/rng"
)

const testSeed = 42

func testSecret() []byte { return []byte("0123456789abcdef") }

func testDesign(t *testing.T) dse.Design {
	t.Helper()
	s := dse.Spec{LAB: 30, KFrac: 0.1, ContinuousT: true}
	s.Dist.Alpha = 6
	s.Dist.Beta = 8
	s.Criteria.MinWork = 0.99
	s.Criteria.MaxOverrun = 0.01
	d, err := dse.Explore(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// accessEnv is the deterministic environment schedule used across the
// crash tests: every 5th access runs hot so fractional wear acceleration
// is part of the replayed trajectory.
func accessEnv(i int) nems.Environment {
	if i%5 == 4 {
		return nems.Environment{TempCelsius: 200}
	}
	return nems.RoomTemp
}

// openStore opens a DiskStore on dir with a deterministic fake clock.
func openStore(t *testing.T, dir string, threshold int) *DiskStore {
	t.Helper()
	var tick int64
	st, err := Open(Config{
		Dir:               dir,
		NowNanos:          func() int64 { tick += 1e6; return tick },
		SnapshotThreshold: threshold,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// provisionVia recovers st into a fresh registry and provisions one
// architecture, returning both.
func provisionVia(t *testing.T, st *DiskStore) (*registry.Registry, *registry.Entry) {
	t.Helper()
	reg := registry.NewWithStore(4, st)
	if _, err := st.Recover(reg); err != nil {
		t.Fatal(err)
	}
	arch, err := core.Build(testDesign(t), testSecret(), rng.New(testSeed))
	if err != nil {
		t.Fatal(err)
	}
	e, err := reg.Provision(arch, testSeed, testSecret())
	if err != nil {
		t.Fatal(err)
	}
	return reg, e
}

// twin builds the uninterrupted reference architecture and plays n
// accesses of the schedule into it.
func twin(t *testing.T, n int) *core.Architecture {
	t.Helper()
	arch, err := core.Build(testDesign(t), testSecret(), rng.New(testSeed))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := arch.Access(accessEnv(i)); err != nil &&
			!errors.Is(err, core.ErrTransient) && !errors.Is(err, core.ErrDecodeFailed) {
			t.Fatalf("twin access %d: %v", i, err)
		}
	}
	return arch
}

// drive plays n accesses of the schedule through an entry.
func drive(t *testing.T, e *registry.Entry, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := e.Access(context.Background(), accessEnv(i)); err != nil &&
			!errors.Is(err, core.ErrTransient) && !errors.Is(err, core.ErrDecodeFailed) {
			t.Fatalf("access %d: %v", i, err)
		}
	}
}

// lockoutTranscript drives an architecture to exhaustion, returning the
// error sequence and recovered secrets.
func lockoutTranscript(t *testing.T, a *core.Architecture) (outcomes []string, secrets [][]byte) {
	t.Helper()
	for i := 0; i < 100000; i++ {
		secret, err := a.Access(nems.RoomTemp)
		switch {
		case err == nil:
			outcomes = append(outcomes, "success")
			secrets = append(secrets, secret)
		case errors.Is(err, core.ErrExhausted):
			return append(outcomes, "exhausted"), secrets
		case errors.Is(err, core.ErrTransient):
			outcomes = append(outcomes, "transient")
		case errors.Is(err, core.ErrDecodeFailed):
			outcomes = append(outcomes, "decode_failed")
		default:
			t.Fatalf("unexpected access error: %v", err)
		}
	}
	t.Fatal("architecture never locked out")
	return nil, nil
}

// recoverInto opens a fresh store on dir and recovers it into a fresh
// registry, simulating a restart after a crash (the previous DiskStore
// is simply abandoned, as SIGKILL would).
func recoverInto(t *testing.T, dir string) (*registry.Registry, *DiskStore, RecoveryStats) {
	t.Helper()
	st := openStore(t, dir, 0)
	reg := registry.NewWithStore(4, st)
	stats, err := st.Recover(reg)
	if err != nil {
		t.Fatal(err)
	}
	return reg, st, stats
}

// TestCrashRecoveryGolden is the tentpole acceptance test: provision with
// seed 42, consume 17 accesses, crash without any shutdown, restart —
// and the recovered architecture is bit-identical to an uninterrupted
// twin, all the way to lockout.
func TestCrashRecoveryGolden(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 0)
	_, e := provisionVia(t, st)
	drive(t, e, 17)
	// Crash: the store is abandoned mid-life, never Closed or snapshotted.

	reg2, _, stats := recoverInto(t, dir)
	if stats.ReplayedProvisions != 1 || stats.ReplayedAccesses != 17 {
		t.Fatalf("replayed %d provisions / %d accesses, want 1 / 17",
			stats.ReplayedProvisions, stats.ReplayedAccesses)
	}
	e2, ok := reg2.Get(e.ID)
	if !ok {
		t.Fatalf("recovered registry has no %s", e.ID)
	}
	if e2.Seed != testSeed || string(e2.Secret) != string(testSecret()) {
		t.Fatalf("recovered entry metadata: seed %d secret %q", e2.Seed, e2.Secret)
	}

	ref := twin(t, 17)
	if !reflect.DeepEqual(e2.Arch.State(), ref.State()) {
		t.Fatalf("recovered state differs from uninterrupted twin:\n got %+v\nwant %+v",
			e2.Arch.State(), ref.State())
	}
	gotTotal, gotOK := e2.Arch.Accesses()
	refTotal, refOK := ref.Accesses()
	if gotTotal != refTotal || gotOK != refOK {
		t.Fatalf("recovered counters (%d,%d) != twin (%d,%d)", gotTotal, gotOK, refTotal, refOK)
	}

	// The remaining budget must play out identically, byte for byte.
	wantOut, wantSec := lockoutTranscript(t, ref)
	gotOut, gotSec := lockoutTranscript(t, e2.Arch)
	if !reflect.DeepEqual(gotOut, wantOut) {
		t.Fatalf("post-recovery transcript diverges:\n got %v\nwant %v", gotOut, wantOut)
	}
	if !reflect.DeepEqual(gotSec, wantSec) {
		t.Fatal("post-recovery secrets diverge")
	}
}

// TestRecoveredTotalsMonotonic: a recovered registry never under-counts.
// Every access durably logged before the crash is present after restart.
func TestRecoveredTotalsMonotonic(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 0)
	_, e := provisionVia(t, st)
	drive(t, e, 9)
	preTotal, _ := e.Arch.Accesses()

	reg2, _, _ := recoverInto(t, dir)
	e2, _ := reg2.Get(e.ID)
	postTotal, _ := e2.Arch.Accesses()
	if postTotal < preTotal {
		t.Fatalf("restart refunded budget: %d accesses before crash, %d after recovery", preTotal, postTotal)
	}
	if postTotal != preTotal {
		t.Fatalf("recovered total %d != logged total %d", postTotal, preTotal)
	}
}

// TestTornTailRecovers: a crash mid-append leaves a partial frame; the
// next recovery truncates it and serves the state the complete prefix
// implies.
func TestTornTailRecovers(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 0)
	_, e := provisionVia(t, st)
	drive(t, e, 17)

	// Simulate a crash mid-write: a frame header promising more bytes
	// than the file holds.
	seg := filepath.Join(dir, segName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	reg2, st2, stats := recoverInto(t, dir)
	if stats.TornBytesTruncated != 10 {
		t.Fatalf("TornBytesTruncated = %d, want 10", stats.TornBytesTruncated)
	}
	if stats.ReplayedAccesses != 17 {
		t.Fatalf("replayed %d accesses, want all 17 complete ones", stats.ReplayedAccesses)
	}
	e2, _ := reg2.Get(e.ID)
	if !reflect.DeepEqual(e2.Arch.State(), twin(t, 17).State()) {
		t.Fatal("state after torn-tail truncation differs from twin")
	}

	// The truncated segment must accept appends again: drive one access
	// through the recovered store and recover a third time.
	if _, err := e2.Access(context.Background(), accessEnv(17)); err != nil &&
		!errors.Is(err, core.ErrTransient) && !errors.Is(err, core.ErrDecodeFailed) {
		t.Fatal(err)
	}
	_ = st2
	reg3, _, _ := recoverInto(t, dir)
	e3, _ := reg3.Get(e.ID)
	if !reflect.DeepEqual(e3.Arch.State(), twin(t, 18).State()) {
		t.Fatal("state after post-truncation append differs from twin")
	}
}

// TestFlippedCRCRefuses: damage that is not a torn tail must make
// recovery fail closed, naming the damaged record.
func TestFlippedCRCRefuses(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 0)
	_, e := provisionVia(t, st)
	drive(t, e, 17)
	_ = e

	// Flip one CRC byte of record 1 (the first access record; record 0 is
	// the provision).
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	n0 := int64(data[0]) | int64(data[1])<<8 | int64(data[2])<<16 | int64(data[3])<<24
	off := 8 + n0 + 4 // record 1's CRC field
	data[off] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir, 0)
	reg2 := registry.NewWithStore(4, st2)
	_, err = st2.Recover(reg2)
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("Recover on flipped CRC: err = %v, want *CorruptionError", err)
	}
	if ce.File != segName(1) || ce.Record != 1 {
		t.Fatalf("corruption reported at %s record %d, want %s record 1", ce.File, ce.Record, segName(1))
	}

	// The refusing store must not accept appends.
	if _, aerr := st2.Append([]registry.Record{{Access: &registry.AccessRecord{ID: "arch-000001"}}}); aerr == nil {
		t.Fatal("append succeeded on a store that refused recovery")
	}
}

// TestSnapshotCompaction: snapshotting rotates segments, deletes covered
// history, and the (snapshot + suffix) recovery equals the uninterrupted
// twin.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 0)
	reg, e := provisionVia(t, st)
	drive(t, e, 10)

	if err := st.Snapshot(reg); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Error("segment 1 survived compaction")
	}
	if _, err := os.Stat(filepath.Join(dir, snapName(2))); err != nil {
		t.Errorf("snapshot 2 missing: %v", err)
	}
	if st.RecordsSinceSnapshot() != 0 {
		t.Errorf("RecordsSinceSnapshot = %d after snapshot", st.RecordsSinceSnapshot())
	}

	// Post-snapshot traffic lands in segment 2; then crash.
	for i := 10; i < 17; i++ {
		if _, err := e.Access(context.Background(), accessEnv(i)); err != nil &&
			!errors.Is(err, core.ErrTransient) && !errors.Is(err, core.ErrDecodeFailed) {
			t.Fatal(err)
		}
	}

	reg2, _, stats := recoverInto(t, dir)
	if stats.SnapshotEpoch != 2 || stats.SnapshotArchitectures != 1 {
		t.Fatalf("recovered from snapshot epoch %d with %d archs, want epoch 2 with 1",
			stats.SnapshotEpoch, stats.SnapshotArchitectures)
	}
	if stats.ReplayedAccesses != 7 || stats.ReplayedProvisions != 0 {
		t.Fatalf("replayed %d accesses / %d provisions, want 7 / 0 (prefix is in the snapshot)",
			stats.ReplayedAccesses, stats.ReplayedProvisions)
	}
	e2, ok := reg2.Get(e.ID)
	if !ok {
		t.Fatalf("recovered registry has no %s", e.ID)
	}
	if !reflect.DeepEqual(e2.Arch.State(), twin(t, 17).State()) {
		t.Fatal("snapshot+suffix recovery differs from uninterrupted twin")
	}

	// Recovered IDs must not be reassigned.
	arch, err := core.Build(testDesign(t), testSecret(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	e3, err := reg2.Provision(arch, 7, []byte("other"))
	if err != nil {
		t.Fatal(err)
	}
	if e3.ID != "arch-000002" {
		t.Fatalf("post-recovery provision ID = %q, want arch-000002", e3.ID)
	}
}

// TestSnapshotThresholdSignals: crossing SnapshotThreshold raises the
// SnapshotNeeded signal exactly as a level trigger.
func TestSnapshotThresholdSignals(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 5)
	_, e := provisionVia(t, st)
	select {
	case <-st.SnapshotNeeded():
		t.Fatal("signal before threshold")
	default:
	}
	drive(t, e, 4) // 1 provision + 4 accesses = 5 records
	select {
	case <-st.SnapshotNeeded():
	default:
		t.Fatal("no signal after crossing threshold")
	}
}

// TestAppendBeforeRecoverFails pins the arming contract.
func TestAppendBeforeRecoverFails(t *testing.T) {
	st := openStore(t, t.TempDir(), 0)
	if _, err := st.Append([]registry.Record{{Access: &registry.AccessRecord{ID: "arch-000001"}}}); err == nil {
		t.Fatal("append before Recover succeeded")
	}
	if err := st.Snapshot(registry.New(1)); err == nil {
		t.Fatal("snapshot before Recover succeeded")
	}
}

// TestFreshDirIsEmpty: recovering an empty directory yields an empty
// registry and a writable segment 1.
func TestFreshDirIsEmpty(t *testing.T) {
	dir := t.TempDir()
	reg, st, stats := recoverInto(t, dir)
	if reg.Len() != 0 || stats.Segments != 0 || stats.SnapshotEpoch != 0 {
		t.Fatalf("fresh dir recovery: len %d, stats %+v", reg.Len(), stats)
	}
	arch, err := core.Build(testDesign(t), testSecret(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Provision(arch, 1, []byte("s")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(1))); err != nil {
		t.Fatalf("segment 1 missing after first provision: %v", err)
	}
}
