package wal

// Targeted fault-injection tests for the WAL's snapshot and append
// machinery, using the record-then-target technique: run the scenario
// once through a recording injector (no faults) to learn which op number
// performs the operation under test, then rerun it on a fresh directory
// with a fault aimed at exactly that op. Both passes issue the identical
// operation sequence, so the targeting is deterministic.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"

	"lemonade/internal/core"
	"lemonade/internal/fault"
	"lemonade/internal/registry"
)

// openStoreFS is openStore with an explicit filesystem.
func openStoreFS(t *testing.T, dir string, threshold int, fsys fault.FS) *DiskStore {
	t.Helper()
	var tick int64
	st, err := Open(Config{
		Dir:               dir,
		NowNanos:          func() int64 { tick += 1e6; return tick },
		SnapshotThreshold: threshold,
		FS:                fsys,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// snapshotScenario is the workload both snapshot-fault tests replay:
// provision, 10 accesses, snapshot.
func snapshotScenario(t *testing.T, dir string, fsys fault.FS) (*DiskStore, *registry.Registry, error) {
	t.Helper()
	st := openStoreFS(t, dir, 0, fsys)
	reg, e := provisionVia(t, st)
	drive(t, e, 10)
	return st, reg, st.Snapshot(reg)
}

// findOp returns the op number of the first recorded operation matching
// kind with a path suffix.
func findOp(t *testing.T, rec *fault.Injector, kind fault.OpKind, pathSuffix string) uint64 {
	t.Helper()
	for _, op := range rec.OpLog() {
		if op.Kind == kind && strings.HasSuffix(op.Path, pathSuffix) {
			return op.N
		}
	}
	t.Fatalf("recording pass never performed %v on *%s", kind, pathSuffix)
	return 0
}

// mustNotExist asserts a path is absent.
func mustNotExist(t *testing.T, path string) {
	t.Helper()
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("%s exists (stat err %v), want absent", path, err)
	}
}

// driveFrom plays accesses [from, to) of the schedule through an entry.
func driveFrom(t *testing.T, e *registry.Entry, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if _, err := e.Access(context.Background(), accessEnv(i)); err != nil &&
			!errors.Is(err, core.ErrTransient) && !errors.Is(err, core.ErrDecodeFailed) {
			t.Fatalf("access %d: %v", i, err)
		}
	}
}

// TestSnapshotRotationENOSPC hits the disk-full case at the worst
// moment: creating the new segment during snapshot rotation. The
// snapshot must be abandoned whole — no new segment, no snapshot file —
// with the WAL still authoritative and appendable, and recovery
// bit-identical to the uninterrupted twin.
func TestSnapshotRotationENOSPC(t *testing.T) {
	rec := fault.NewInjector(fault.OS{}, fault.Plan{}, fault.WithOpLog())
	if _, _, err := snapshotScenario(t, t.TempDir(), rec); err != nil {
		t.Fatalf("recording pass: %v", err)
	}
	target := findOp(t, rec, fault.OpOpenFile, segName(2))

	dir := t.TempDir()
	inj := fault.NewInjector(fault.OS{}, fault.Plan{Rules: []fault.Rule{{Op: target, Kind: fault.NoSpace}}})
	st, reg, err := snapshotScenario(t, dir, inj)
	if !errors.Is(err, fault.ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("snapshot error = %v, want injected ENOSPC", err)
	}

	// Nothing of the snapshot survives: no rotated segment, no snapshot.
	mustNotExist(t, filepath.Join(dir, segName(2)))
	mustNotExist(t, filepath.Join(dir, snapName(2)))

	// The store is not poisoned — appends continue into segment 1.
	e, ok := reg.Get("arch-000001")
	if !ok {
		t.Fatal("architecture vanished")
	}
	driveFrom(t, e, 10, 17)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	reg2, _, stats := recoverInto(t, dir)
	if stats.SnapshotEpoch != 0 || stats.Segments != 1 {
		t.Fatalf("recovery = %+v, want snapshotless single-segment replay", stats)
	}
	if stats.ReplayedProvisions != 1 || stats.ReplayedAccesses != 17 {
		t.Fatalf("replayed %d provisions + %d accesses, want 1 + 17",
			stats.ReplayedProvisions, stats.ReplayedAccesses)
	}
	e2, _ := reg2.Get("arch-000001")
	if !reflect.DeepEqual(e2.Arch.State(), twin(t, 17).State()) {
		t.Fatal("recovered state diverges from uninterrupted twin")
	}
}

// TestSnapshotFsyncFailureDiscardsSnapshot fails the fsync of the
// snapshot temp file — after rotation, inside the snapshot write path.
// The half-written snapshot must be discarded (tmp removed, nothing
// published), the rotated WAL segments stay the whole truth, and
// recovery replays them bit-identically, twice over.
func TestSnapshotFsyncFailureDiscardsSnapshot(t *testing.T) {
	rec := fault.NewInjector(fault.OS{}, fault.Plan{}, fault.WithOpLog())
	if _, _, err := snapshotScenario(t, t.TempDir(), rec); err != nil {
		t.Fatalf("recording pass: %v", err)
	}
	target := findOp(t, rec, fault.OpSync, ".snap.tmp")

	dir := t.TempDir()
	inj := fault.NewInjector(fault.OS{}, fault.Plan{Rules: []fault.Rule{{Op: target, Kind: fault.FailFsync}}})
	st, reg, err := snapshotScenario(t, dir, inj)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("snapshot error = %v, want injected fsync failure", err)
	}

	// Snapshot discarded: neither the published file nor the temp file
	// survives; the rotation itself did happen, so both segments exist.
	mustNotExist(t, filepath.Join(dir, snapName(2)))
	mustNotExist(t, filepath.Join(dir, snapName(2)+".tmp"))
	for _, seg := range []string{segName(1), segName(2)} {
		if _, err := os.Stat(filepath.Join(dir, seg)); err != nil {
			t.Fatalf("segment %s missing after failed snapshot: %v", seg, err)
		}
	}

	// Appends continue into the rotated segment.
	e, _ := reg.Get("arch-000001")
	driveFrom(t, e, 10, 17)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The WAL alone recovers the full history — and does so
	// bit-identically on a second recovery of the same directory.
	want := twin(t, 17).State()
	for round := 0; round < 2; round++ {
		reg2, st2, stats := recoverInto(t, dir)
		if stats.SnapshotEpoch != 0 || stats.Segments != 2 {
			t.Fatalf("round %d: recovery = %+v, want snapshotless 2-segment replay", round, stats)
		}
		e2, _ := reg2.Get("arch-000001")
		if !reflect.DeepEqual(e2.Arch.State(), want) {
			t.Fatalf("round %d: recovered state diverges from twin", round)
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTornAppendFailsClosedThenRecovers injects a short write into one
// access append: the caller sees a store failure (no wearout consumed,
// log-ahead rule failing closed), the torn bytes are truncated away at
// append time, and the very next append lands on a clean boundary —
// recovery never even sees a torn tail.
func TestTornAppendFailsClosedThenRecovers(t *testing.T) {
	// Recording pass: the 7th Write is access index 5 (provision is the
	// 1st). Recorded rather than hardcoded so the test survives layout
	// changes.
	rec := fault.NewInjector(fault.OS{}, fault.Plan{}, fault.WithOpLog())
	{
		st := openStoreFS(t, t.TempDir(), 0, rec)
		_, e := provisionVia(t, st)
		drive(t, e, 10)
	}
	var target uint64
	writes := 0
	for _, op := range rec.OpLog() {
		if op.Kind == fault.OpWrite {
			writes++
			if writes == 7 {
				target = op.N
				break
			}
		}
	}
	if target == 0 {
		t.Fatal("recording pass made fewer than 7 writes")
	}

	dir := t.TempDir()
	inj := fault.NewInjector(fault.OS{}, fault.Plan{Rules: []fault.Rule{{Op: target, Kind: fault.ShortWrite}}})
	st := openStoreFS(t, dir, 0, inj)
	_, e := provisionVia(t, st)
	for i := 0; i < 10; i++ {
		_, err := e.Access(context.Background(), accessEnv(i))
		if errors.Is(err, registry.ErrStore) {
			if i != 5 {
				t.Fatalf("store failure at access %d, want 5", i)
			}
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("store failure not the injected one: %v", err)
			}
			// Failed closed: nothing recorded, nothing consumed. Retry the
			// same schedule slot; the torn prefix was truncated away, so
			// this append must land clean.
			if _, err := e.Access(context.Background(), accessEnv(i)); err != nil &&
				!errors.Is(err, core.ErrTransient) && !errors.Is(err, core.ErrDecodeFailed) {
				t.Fatalf("retry after torn append: %v", err)
			}
			continue
		}
		if err != nil && !errors.Is(err, core.ErrTransient) && !errors.Is(err, core.ErrDecodeFailed) {
			t.Fatalf("access %d: %v", i, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if fired := inj.Fired(); len(fired) != 1 || fired[0].Kind != fault.ShortWrite {
		t.Fatalf("fired = %v, want exactly the scheduled short write", fired)
	}

	reg2, _, stats := recoverInto(t, dir)
	if stats.TornBytesTruncated != 0 {
		t.Fatalf("recovery truncated %d torn bytes; append-time repair should have left none",
			stats.TornBytesTruncated)
	}
	if stats.ReplayedAccesses != 10 {
		t.Fatalf("replayed %d accesses, want 10 (failed append recorded nothing)", stats.ReplayedAccesses)
	}
	e2, _ := reg2.Get("arch-000001")
	if !reflect.DeepEqual(e2.Arch.State(), twin(t, 10).State()) {
		t.Fatal("recovered state diverges from twin after torn append")
	}
	if !reflect.DeepEqual(e2.Arch.State(), e.Arch.State()) {
		t.Fatal("recovered state diverges from pre-crash in-memory state")
	}
}
