package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/fault"
	"lemonade/internal/metrics"
	"lemonade/internal/nems"
	"lemonade/internal/registry"
	"lemonade/internal/rng"
)

// Config parameterizes a DiskStore.
type Config struct {
	// Dir is the data directory; created if missing.
	Dir string
	// NowNanos supplies timestamps for snapshot metadata and fsync
	// latency measurement (the package obeys the determinism contract and
	// never reads the wall clock itself). Nil observes everything as zero.
	NowNanos func() int64
	// Metrics receives the WAL's instrumentation; nil uses a private
	// registry (metrics still work, nobody scrapes them).
	Metrics *metrics.Registry
	// SnapshotThreshold, when > 0, signals SnapshotNeeded once that many
	// records accumulate since the last snapshot.
	SnapshotThreshold int
	// FS is the filesystem the store performs durability through. Nil
	// uses the real one (fault.OS); tests and chaos runs supply a
	// fault.Injector.
	FS fault.FS
	// MaxBatch caps how many queued Append calls the committer folds into
	// one durable write + fsync (default 64). Larger batches amortize the
	// fsync further at the cost of per-request latency under saturation.
	MaxBatch int
	// MaxQueue caps how many Append calls may be queued ahead of the
	// committer before new appends block (default 1024) — backpressure,
	// so a stalled disk surfaces as latency instead of unbounded memory.
	MaxQueue int
}

// record is the JSON payload of one WAL frame.
type record struct {
	Type      string                    `json:"t"` // "provision" | "access" | "stress" | "remap" | "retire"
	Provision *registry.ProvisionRecord `json:"p,omitempty"`
	Access    *registry.AccessRecord    `json:"a,omitempty"`
	Stress    *registry.StressRecord    `json:"s,omitempty"`
	Remap     *registry.RemapRecord     `json:"r,omitempty"`
	Retire    *registry.RetireRecord    `json:"x,omitempty"`
}

// snapshotArch is one architecture inside a snapshot: the provisioning
// triple that deterministically rebuilds the hardware, plus the exact
// mutable wear state to overlay on it.
type snapshotArch struct {
	ID     string     `json:"id"`
	Seed   uint64     `json:"seed"`
	Secret []byte     `json:"secret"`
	Design dse.Design `json:"design"`
	State  core.State `json:"state"`
	// Spares and RemapEpoch pin the wear-leveling variant; both zero means
	// the architecture is unleveled (and, per omitempty, pre-leveling
	// snapshots keep their exact wire encoding).
	Spares     int    `json:"spares,omitempty"`
	RemapEpoch uint64 `json:"remap_epoch,omitempty"`
}

// snapshotFile is the single framed payload of a snap-*.snap file.
type snapshotFile struct {
	Format           int            `json:"format"`
	Epoch            uint64         `json:"epoch"` // first segment NOT covered
	CreatedUnixNanos int64          `json:"created_unix_nanos"`
	Archs            []snapshotArch `json:"archs"`
}

// RecoveryStats summarizes what Recover did, for startup logging and the
// recovery metrics.
type RecoveryStats struct {
	SnapshotEpoch            uint64 // 0 = recovered without a snapshot
	SnapshotCreatedUnixNanos int64
	SnapshotArchitectures    int
	ReplayedProvisions       int
	ReplayedAccesses         int
	ReplayedStresses         int
	ReplayedRetires          int
	ReplayedRemaps           int
	TornBytesTruncated       int64
	Segments                 int // segments replayed
}

// ReplayedRecords is the total record count the recovery replayed.
func (st RecoveryStats) ReplayedRecords() int {
	return st.ReplayedProvisions + st.ReplayedAccesses + st.ReplayedStresses +
		st.ReplayedRetires + st.ReplayedRemaps
}

// DiskStore is the disk-backed registry.Store: an append-only segmented
// WAL plus snapshot compaction, committed by a single group-commit
// goroutine. Create with Open, then call Recover exactly once before any
// append; Close drains the commit queue. All methods are safe for
// concurrent use.
//
// Group commit: Append frames its records off the caller's goroutine and
// enqueues them; the committer drains the queue, writes every pending
// frame in one segment write, issues ONE fsync, and resolves every
// ticket in the group. The log-ahead rule survives per request because
// each caller still blocks on its ticket before any wear-state mutation
// fires — batching amortizes the fsync, it never skips it.
type DiskStore struct {
	dir       string
	fs        fault.FS
	now       func() int64
	threshold int
	maxBatch  int
	maxQueue  int

	// barrier orders commits against snapshots: the committer takes ONE
	// shared hold per commit group before the durable write, refcounted
	// across the group's tickets, and the last Ticket.Done — every
	// member's records have taken their in-memory effect — releases it
	// (the committer itself releases it when the group fails). Snapshot
	// holds it exclusively while capturing state and rotating segments,
	// so a snapshot can never observe a state its log position is ahead
	// of or behind. One RLock per group, not per member: sync.RWMutex
	// blocks new RLocks once a writer is pending, so a per-member RLock
	// loop interleaving with Snapshot's Lock would deadlock both sides.
	barrier sync.RWMutex

	mu        sync.Mutex
	cur       fault.File // guarded by mu
	curSeq    uint64     // guarded by mu
	curOff    int64      // guarded by mu
	recsSince int        // guarded by mu
	recovered bool       // guarded by mu
	failed    error      // guarded by mu; sticky: set when the log tail is in an unknown state

	// qMu guards the commit queue. It is never held together with mu or
	// barrier: producers enqueue under qMu alone, and the committer drops
	// it before touching the file.
	qMu     sync.Mutex
	qCond   sync.Cond    // signals queue/qClosed changes; shares qMu
	queue   []*commitReq // guarded by qMu
	qClosed bool         // guarded by qMu

	committerDone chan struct{} // closed when the committer goroutine exits
	groupSeq      uint64        // commit group IDs; only the committer touches it

	snapCh chan struct{}

	mAppendProv   *metrics.Counter
	mAppendAcc    *metrics.Counter
	mAppendStress *metrics.Counter
	mAppendRemap  *metrics.Counter
	mAppendRetire *metrics.Counter
	mAppendErrs   *metrics.Counter
	hFsync        *metrics.Histogram
	hBatchSize    *metrics.Histogram
	mGroupSyncs   *metrics.Counter
	mReplayProv   *metrics.Counter
	mReplayAcc    *metrics.Counter
	mReplayStress *metrics.Counter
	mReplayRemap  *metrics.Counter
	mReplayRetire *metrics.Counter
	mSnapshots    *metrics.Counter
	mTornTrunc    *metrics.Counter
	gSnapUnix     *metrics.Gauge
	gRecovered    *metrics.Gauge
}

// commitReq is one Append staged for the committer: its records already
// framed, its ticket waiting for the group's fsync.
type commitReq struct {
	frames  []byte
	nRecs   int
	nProv   uint64
	nAcc    uint64
	nStress uint64
	nRemap  uint64
	nRetire uint64
	tkt     *groupTicket
}

// GroupError is the failure every ticket of one commit group resolves
// with: the same underlying error, tagged with the group ID so consumers
// (the circuit breaker) can count one sick fsync as one failure instead
// of one per passenger.
type GroupError struct {
	Group uint64
	Err   error
}

func (e *GroupError) Error() string {
	return fmt.Sprintf("wal: commit group %d: %v", e.Group, e.Err)
}

func (e *GroupError) Unwrap() error { return e.Err }

// CommitGroup returns the failed group's ID.
func (e *GroupError) CommitGroup() uint64 { return e.Group }

// groupHold is one commit group's shared snapshot-barrier hold. The
// committer arms it with the group size before the durable write; each
// member's Done releases one reference and the last reference out drops
// the group's single barrier.RUnlock.
type groupHold struct {
	s    *DiskStore
	refs atomic.Int64
}

func (h *groupHold) release() {
	if h.refs.Add(-1) == 0 {
		h.s.barrier.RUnlock()
	}
}

// groupTicket implements registry.Ticket for one Append call.
type groupTicket struct {
	hold *groupHold    // the containing group's barrier hold; set by the committer before resolve
	ch   chan struct{} // closed once err is settled
	err  error         // written before close(ch), read only after Wait
	done sync.Once
}

// Wait blocks until the containing commit group fsyncs (nil) or fails.
func (t *groupTicket) Wait() error {
	<-t.ch
	return t.err
}

// Done releases this Append's share of the group's snapshot-barrier
// hold. It must only be called after Wait returned nil (a failed
// group's hold was already released by the committer).
func (t *groupTicket) Done() {
	if t.err != nil {
		return
	}
	t.done.Do(t.hold.release)
}

// resolve settles the ticket; called exactly once, by the committer.
func (t *groupTicket) resolve(err error) {
	t.err = err
	close(t.ch)
}

// immediateTicket is the already-durable ticket returned for an empty
// Append: nothing to commit, nothing to release.
type immediateTicket struct{}

func (immediateTicket) Wait() error { return nil }
func (immediateTicket) Done()       {}

// Open prepares a DiskStore on dir. It creates the directory if needed
// and registers metrics, but performs no reads: call Recover to load the
// snapshot, replay the log, and arm the store for appends.
func Open(cfg Config) (*DiskStore, error) {
	if cfg.Dir == "" {
		return nil, errors.New("wal: empty data directory")
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = fault.OS{}
	}
	if err := fsys.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating data dir: %w", err)
	}
	now := cfg.NowNanos
	if now == nil {
		now = func() int64 { return 0 }
	}
	m := cfg.Metrics
	if m == nil {
		m = metrics.NewRegistry()
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 64
	}
	maxQueue := cfg.MaxQueue
	if maxQueue <= 0 {
		maxQueue = 1024
	}
	s := &DiskStore{
		dir:           cfg.Dir,
		fs:            fsys,
		now:           now,
		threshold:     cfg.SnapshotThreshold,
		maxBatch:      maxBatch,
		maxQueue:      maxQueue,
		committerDone: make(chan struct{}),
		snapCh:        make(chan struct{}, 1),

		mAppendProv:   m.Counter("lemonaded_wal_appends_total", `type="provision"`, "durable WAL appends by record type"),
		mAppendAcc:    m.Counter("lemonaded_wal_appends_total", `type="access"`, "durable WAL appends by record type"),
		mAppendStress: m.Counter("lemonaded_wal_appends_total", `type="stress"`, "durable WAL appends by record type"),
		mAppendRemap:  m.Counter("lemonaded_wal_appends_total", `type="remap"`, "durable WAL appends by record type"),
		mAppendRetire: m.Counter("lemonaded_wal_appends_total", `type="retire"`, "durable WAL appends by record type"),
		mAppendErrs:   m.Counter("lemonaded_wal_append_failures_total", "", "WAL appends that failed (each is a failed-closed operation)"),
		hFsync:        m.Histogram("lemonaded_wal_fsync_seconds", "", "fsync latency of WAL commits", nil),
		hBatchSize:    m.Histogram("lemonaded_wal_batch_size", "", "records per group-commit write", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		mGroupSyncs:   m.Counter("lemonaded_wal_group_fsyncs_total", "", "group-commit fsyncs issued (each covers a whole batch)"),
		mReplayProv:   m.Counter("lemonaded_wal_replayed_records_total", `type="provision"`, "records replayed during recovery"),
		mReplayAcc:    m.Counter("lemonaded_wal_replayed_records_total", `type="access"`, "records replayed during recovery"),
		mReplayStress: m.Counter("lemonaded_wal_replayed_records_total", `type="stress"`, "records replayed during recovery"),
		mReplayRemap:  m.Counter("lemonaded_wal_replayed_records_total", `type="remap"`, "records replayed during recovery"),
		mReplayRetire: m.Counter("lemonaded_wal_replayed_records_total", `type="retire"`, "records replayed during recovery"),
		mSnapshots:    m.Counter("lemonaded_wal_snapshots_total", "", "snapshots written"),
		mTornTrunc:    m.Counter("lemonaded_wal_torn_tail_truncations_total", "", "torn WAL tails truncated during recovery"),
		gSnapUnix:     m.Gauge("lemonaded_wal_last_snapshot_unix_seconds", "", "creation time of the newest snapshot (snapshot age = now minus this)"),
		gRecovered:    m.Gauge("lemonaded_wal_recovered_architectures", "", "architectures reconstructed by the last recovery"),
	}
	s.qCond.L = &s.qMu
	go s.committer()
	return s, nil
}

// SnapshotNeeded signals (on a 1-buffered channel) when the records
// appended since the last snapshot cross Config.SnapshotThreshold. The
// daemon selects on it next to its interval ticker.
func (s *DiskStore) SnapshotNeeded() <-chan struct{} { return s.snapCh }

// RecordsSinceSnapshot reports how many records have accumulated in the
// current segment since the last snapshot (or since recovery).
func (s *DiskStore) RecordsSinceSnapshot() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recsSince
}

// Append implements registry.Store: it frames recs, enqueues them for
// the committer, and returns a Ticket that resolves when the containing
// commit group has been durably fsynced. Errors the store can detect
// synchronously (bad record shape, unrecovered or poisoned log, closed
// store) are returned here; durability failures arrive through
// Ticket.Wait as a *GroupError.
func (s *DiskStore) Append(recs []registry.Record) (registry.Ticket, error) {
	req := &commitReq{tkt: &groupTicket{ch: make(chan struct{})}}
	for i := range recs {
		r, err := walRecord(&recs[i])
		if err != nil {
			s.mAppendErrs.Inc()
			return nil, err
		}
		payload, err := json.Marshal(r)
		if err != nil {
			s.mAppendErrs.Inc()
			return nil, fmt.Errorf("wal: encoding record: %w", err)
		}
		req.frames = appendFrame(req.frames, payload)
		req.nRecs++
		switch {
		case r.Provision != nil:
			req.nProv++
		case r.Access != nil:
			req.nAcc++
		case r.Stress != nil:
			req.nStress++
		case r.Remap != nil:
			req.nRemap++
		case r.Retire != nil:
			req.nRetire++
		}
	}
	if req.nRecs == 0 {
		return immediateTicket{}, nil
	}

	// Surface an unusable log synchronously — callers fail closed before
	// queueing work the committer would only bounce.
	s.mu.Lock()
	var err error
	switch {
	case s.failed != nil:
		err = fmt.Errorf("wal: log unusable after earlier failure: %w", s.failed)
	case !s.recovered:
		err = errors.New("wal: append before Recover")
	}
	s.mu.Unlock()
	if err != nil {
		s.mAppendErrs.Inc()
		return nil, err
	}

	s.qMu.Lock()
	for len(s.queue) >= s.maxQueue && !s.qClosed {
		s.qCond.Wait()
	}
	if s.qClosed {
		s.qMu.Unlock()
		s.mAppendErrs.Inc()
		return nil, errors.New("wal: append after Close")
	}
	s.queue = append(s.queue, req)
	s.qCond.Broadcast()
	s.qMu.Unlock()
	return req.tkt, nil
}

// walRecord converts a registry.Record into the WAL's framed form,
// rejecting shapes that would not survive replay: exactly one variant
// must be set.
func walRecord(rec *registry.Record) (record, error) {
	set := 0
	var out record
	if rec.Provision != nil {
		set++
		out = record{Type: "provision", Provision: rec.Provision}
	}
	if rec.Access != nil {
		set++
		out = record{Type: "access", Access: rec.Access}
	}
	if rec.Stress != nil {
		set++
		out = record{Type: "stress", Stress: rec.Stress}
	}
	if rec.Remap != nil {
		set++
		out = record{Type: "remap", Remap: rec.Remap}
	}
	if rec.Retire != nil {
		set++
		out = record{Type: "retire", Retire: rec.Retire}
	}
	switch set {
	case 0:
		return record{}, errors.New("wal: empty record")
	case 1:
		return out, nil
	default:
		return record{}, errors.New("wal: record sets more than one variant")
	}
}

// committer is the single goroutine that turns the queue into durable
// groups: it drains everything pending, folds it into maxBatch-sized
// chunks, and commits each chunk with one write and one fsync.
func (s *DiskStore) committer() {
	defer close(s.committerDone)
	for {
		s.qMu.Lock()
		for len(s.queue) == 0 && !s.qClosed {
			s.qCond.Wait()
		}
		if len(s.queue) == 0 && s.qClosed {
			s.qMu.Unlock()
			return
		}
		pending := s.queue
		s.queue = nil
		s.qCond.Broadcast() // wake producers blocked on maxQueue
		s.qMu.Unlock()

		for len(pending) > 0 {
			n := len(pending)
			if n > s.maxBatch {
				n = s.maxBatch
			}
			s.commitGroup(pending[:n])
			pending = pending[n:]
		}
	}
}

// commitGroup durably writes one batch: one segment write, one fsync,
// then every ticket resolves together. On failure every ticket fails
// closed with the same *GroupError — no caller in the group may treat
// its records as durable, and none of its records took in-memory effect
// (their ticket-holders never got past Wait).
func (s *DiskStore) commitGroup(batch []*commitReq) {
	s.groupSeq++
	group := s.groupSeq

	// One shared barrier hold for the WHOLE group, taken before the
	// durable write and released by the last member's Done (or below, on
	// failure). It must be a single RLock: acquiring one per member in a
	// loop deadlocks against a concurrent Snapshot, because a pending
	// barrier.Lock blocks new RLocks while the holds already taken only
	// release after the commit the committer can no longer reach.
	s.barrier.RLock()
	hold := &groupHold{s: s}
	hold.refs.Store(int64(len(batch)))
	for _, req := range batch {
		req.tkt.hold = hold
	}
	fail := func(err error) {
		s.barrier.RUnlock()
		gerr := &GroupError{Group: group, Err: err}
		for _, req := range batch {
			req.tkt.resolve(gerr)
		}
		s.mAppendErrs.Add(uint64(len(batch)))
	}

	s.mu.Lock()
	var err error
	switch {
	case s.failed != nil:
		err = fmt.Errorf("wal: log unusable after earlier failure: %w", s.failed)
	case !s.recovered:
		err = errors.New("wal: append before Recover")
	}
	if err != nil {
		s.mu.Unlock()
		fail(err)
		return
	}
	frames := batch[0].frames
	totalRecs := batch[0].nRecs
	if len(batch) > 1 {
		size := 0
		for _, req := range batch {
			size += len(req.frames)
		}
		frames = make([]byte, 0, size)
		totalRecs = 0
		for _, req := range batch {
			frames = append(frames, req.frames...)
			totalRecs += req.nRecs
		}
	}
	f := s.cur
	prevOff := s.curOff // last known-synced boundary
	if _, werr := f.Write(frames); werr != nil {
		// The segment tail is now unknown (possibly a partial frame). Try
		// to restore the known-good boundary; if even that fails, poison
		// the store — appending after garbage would turn the next recovery
		// into a corruption refusal.
		if terr := f.Truncate(s.curOff); terr != nil {
			s.failed = fmt.Errorf("write failed (%v), then truncate failed (%v)", werr, terr)
		}
		s.mu.Unlock()
		fail(fmt.Errorf("wal: append: %w", werr))
		return
	}
	s.curOff += int64(len(frames))
	s.recsSince += totalRecs
	over := s.threshold > 0 && s.recsSince >= s.threshold
	s.mu.Unlock()

	// fsync outside mu: the commit pipeline stalls behind the disk, not
	// behind every registry touch.
	start := s.now()
	serr := f.Sync()
	s.hFsync.Observe(float64(s.now()-start) / 1e9)
	if serr != nil {
		// The group's frames reached the file but their durability is
		// unknown. Leaving them (and the advanced offset) in place would
		// let the next successful group land AFTER them, so replay would
		// resurrect a whole batch whose callers all failed closed. Restore
		// the known-synced boundary; if even that repair fails, poison the
		// store — appending after phantom bytes of unknown extent would
		// turn the next recovery into a corruption refusal.
		s.mu.Lock()
		if terr := f.Truncate(prevOff); terr != nil {
			s.failed = fmt.Errorf("fsync failed (%v), then truncate failed (%v)", serr, terr)
		} else {
			s.curOff = prevOff
			s.recsSince -= totalRecs
		}
		s.mu.Unlock()
		fail(fmt.Errorf("wal: fsync: %w", serr))
		return
	}
	s.mGroupSyncs.Inc()
	s.hBatchSize.Observe(float64(totalRecs))
	for _, req := range batch {
		s.mAppendProv.Add(req.nProv)
		s.mAppendAcc.Add(req.nAcc)
		s.mAppendStress.Add(req.nStress)
		s.mAppendRemap.Add(req.nRemap)
		s.mAppendRetire.Add(req.nRetire)
		req.tkt.resolve(nil)
	}
	if over {
		select {
		case s.snapCh <- struct{}{}:
		default:
		}
	}
}

// Close stops the committer (draining whatever is already queued), then
// syncs and closes the current segment. It does not snapshot — that is
// the daemon's shutdown step, because only the daemon holds the
// registry.
func (s *DiskStore) Close() error {
	s.qMu.Lock()
	if !s.qClosed {
		s.qClosed = true
		s.qCond.Broadcast()
	}
	s.qMu.Unlock()
	if s.committerDone != nil {
		<-s.committerDone
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur == nil {
		return nil
	}
	err := s.cur.Sync()
	if cerr := s.cur.Close(); err == nil {
		err = cerr
	}
	s.cur = nil
	return err
}

// --- directory layout -----------------------------------------------------

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

func segName(seq uint64) string { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }

func snapName(epoch uint64) string { return fmt.Sprintf("%s%08d%s", snapPrefix, epoch, snapSuffix) }

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, prefix)
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, suffix)
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// scanDir returns the segment sequence numbers and snapshot epochs
// present in dir, each ascending, removing leftover temp files from an
// interrupted snapshot write as it goes.
func (s *DiskStore) scanDir() (segs, snaps []uint64, err error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, nil, err
	}
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasSuffix(name, ".tmp") {
			_ = s.fs.Remove(filepath.Join(s.dir, name))
			continue
		}
		if n, ok := parseSeq(name, segPrefix, segSuffix); ok {
			segs = append(segs, n)
		} else if n, ok := parseSeq(name, snapPrefix, snapSuffix); ok {
			snaps = append(snaps, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	return segs, snaps, nil
}

// syncDir fsyncs the data directory so creates and renames are durable.
func (s *DiskStore) syncDir() error {
	d, err := s.fs.Open(s.dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- recovery -------------------------------------------------------------

// Recover loads the newest snapshot, replays every later segment into
// reg, truncates a torn tail on the final segment, and arms the store
// for appends. It must be called exactly once, before serving traffic.
//
// Failure modes are deliberately asymmetric: a torn tail (crash mid
// append) is repaired silently, because the lost suffix provably never
// took effect — its done-callback never ran, so no response carrying key
// bytes ever left the process. A CRC mismatch anywhere makes Recover
// return a *CorruptionError and leave the store unusable: wear state
// that might under-count consumed accesses must never serve.
func (s *DiskStore) Recover(reg *registry.Registry) (RecoveryStats, error) {
	var stats RecoveryStats
	s.mu.Lock()
	if s.recovered {
		s.mu.Unlock()
		return stats, errors.New("wal: Recover called twice")
	}
	s.mu.Unlock()

	segs, snaps, err := s.scanDir()
	if err != nil {
		return stats, fmt.Errorf("wal: scanning data dir: %w", err)
	}

	// Baseline: the newest snapshot, or empty state when none exists (then
	// the full segment history must be present). A corrupt newest snapshot
	// fails recovery outright — falling back to an older snapshot would
	// serve wear state known to be behind the truth.
	replayFrom := uint64(1)
	if len(snaps) > 0 {
		epoch := snaps[len(snaps)-1]
		snap, err := s.loadSnapshot(epoch)
		if err != nil {
			return stats, err
		}
		if err := restoreSnapshot(reg, snap); err != nil {
			return stats, err
		}
		stats.SnapshotEpoch = epoch
		stats.SnapshotCreatedUnixNanos = snap.CreatedUnixNanos
		stats.SnapshotArchitectures = len(snap.Archs)
		s.gSnapUnix.Set(snap.CreatedUnixNanos / int64(1e9))
		replayFrom = epoch
	}

	// The history from the baseline forward must be contiguous; a missing
	// segment means missing wear, which is the one thing that must never
	// be shrugged off.
	var replay []uint64
	for _, seq := range segs {
		if seq >= replayFrom {
			replay = append(replay, seq)
		}
	}
	if len(replay) > 0 && replay[0] != replayFrom {
		return stats, fmt.Errorf("wal: history gap: baseline needs %s but the oldest following segment is %s",
			segName(replayFrom), segName(replay[0]))
	}
	for i := 1; i < len(replay); i++ {
		if replay[i] != replay[i-1]+1 {
			return stats, fmt.Errorf("wal: segment gap between %s and %s",
				segName(replay[i-1]), segName(replay[i]))
		}
	}

	for i, seq := range replay {
		torn, err := s.replaySegment(reg, seq, i == len(replay)-1, &stats)
		if err != nil {
			return stats, err
		}
		stats.Segments++
		stats.TornBytesTruncated += torn
	}

	// Sweep files the baseline made obsolete (a crash between writing a
	// snapshot and deleting what it covers leaves them behind).
	for _, seq := range segs {
		if seq < replayFrom {
			_ = s.fs.Remove(filepath.Join(s.dir, segName(seq)))
		}
	}
	for _, epoch := range snaps {
		if epoch < replayFrom {
			_ = s.fs.Remove(filepath.Join(s.dir, snapName(epoch)))
		}
	}

	// Open the current segment (the highest replayed, or a fresh one) for
	// appends.
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(replay) == 0 {
		f, err := s.fs.OpenFile(filepath.Join(s.dir, segName(replayFrom)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return stats, fmt.Errorf("wal: creating segment: %w", err)
		}
		if err := s.syncDir(); err != nil {
			_ = f.Close()
			return stats, fmt.Errorf("wal: fsyncing data dir: %w", err)
		}
		s.cur, s.curSeq, s.curOff = f, replayFrom, 0
	} else {
		last := replay[len(replay)-1]
		f, err := s.fs.OpenFile(filepath.Join(s.dir, segName(last)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return stats, fmt.Errorf("wal: opening current segment: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			_ = f.Close()
			return stats, err
		}
		s.cur, s.curSeq, s.curOff = f, last, fi.Size()
	}
	s.recsSince = stats.ReplayedRecords()
	s.recovered = true
	s.gRecovered.Set(int64(reg.Len()))
	return stats, nil
}

func (s *DiskStore) loadSnapshot(epoch uint64) (*snapshotFile, error) {
	name := snapName(epoch)
	data, err := s.fs.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return nil, fmt.Errorf("wal: reading snapshot: %w", err)
	}
	var snap *snapshotFile
	good, torn, err := scanFrames(name, data, func(payload []byte) error {
		if snap != nil {
			return &CorruptionError{File: name, Record: 1, Offset: -1,
				Reason: "snapshot holds more than one frame"}
		}
		snap = new(snapshotFile)
		if err := json.Unmarshal(payload, snap); err != nil {
			return &CorruptionError{File: name, Record: 0, Offset: 0,
				Reason: "snapshot payload is not valid JSON: " + err.Error()}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Snapshots are written to a temp file and atomically renamed, so a
	// torn or empty snapshot cannot come from a crash — only from damage.
	if torn > 0 || snap == nil {
		return nil, &CorruptionError{File: name, Record: 0, Offset: good,
			Reason: "snapshot file is incomplete"}
	}
	if snap.Format != 1 {
		return nil, fmt.Errorf("wal: snapshot %s has unknown format %d", name, snap.Format)
	}
	if snap.Epoch != epoch {
		return nil, &CorruptionError{File: name, Record: 0, Offset: 0,
			Reason: fmt.Sprintf("snapshot declares epoch %d but is named for epoch %d", snap.Epoch, epoch)}
	}
	return snap, nil
}

// rebuildArch deterministically refabricates an architecture from its
// provisioning parameters, choosing the wear-leveled variant when the
// durable record pinned one.
func rebuildArch(design dse.Design, secret []byte, seed uint64, spares int, epoch uint64) (*core.Architecture, error) {
	if spares > 0 || epoch > 0 {
		return core.BuildLeveled(design, secret, core.Leveling{Spares: spares, Epoch: epoch}, rng.New(seed))
	}
	return core.Build(design, secret, rng.New(seed))
}

// restoreSnapshot rebuilds every architecture in snap and registers it
// under its original ID.
func restoreSnapshot(reg *registry.Registry, snap *snapshotFile) error {
	for i := range snap.Archs {
		a := &snap.Archs[i]
		arch, err := rebuildArch(a.Design, a.Secret, a.Seed, a.Spares, a.RemapEpoch)
		if err != nil {
			return fmt.Errorf("wal: snapshot arch %s: rebuild: %w", a.ID, err)
		}
		//lemonvet:allow logahead restoring state that is already durable in the snapshot; no new wear is minted
		if err := arch.Restore(a.State); err != nil {
			return fmt.Errorf("wal: snapshot arch %s: %w", a.ID, err)
		}
		if _, err := reg.Restore(a.ID, arch, a.Seed, a.Secret); err != nil {
			return fmt.Errorf("wal: snapshot arch %s: %w", a.ID, err)
		}
	}
	return nil
}

// replaySegment applies every record of one segment. Only the final
// segment may carry a torn tail; it is truncated in place (and the
// truncation fsynced) so appends resume on a clean frame boundary.
func (s *DiskStore) replaySegment(reg *registry.Registry, seq uint64, isLast bool, stats *RecoveryStats) (int64, error) {
	name := segName(seq)
	path := filepath.Join(s.dir, name)
	data, err := s.fs.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: reading segment: %w", err)
	}
	rec := 0
	good, torn, err := scanFrames(name, data, func(payload []byte) error {
		err := s.applyRecord(reg, name, rec, payload, stats)
		rec++
		return err
	})
	if err != nil {
		return 0, err
	}
	if torn == 0 {
		return 0, nil
	}
	if !isLast {
		return 0, &CorruptionError{File: name, Record: rec, Offset: good,
			Reason: fmt.Sprintf("sealed segment has a %d-byte torn tail", torn)}
	}
	if err := s.fs.Truncate(path, good); err != nil {
		return 0, fmt.Errorf("wal: truncating torn tail of %s: %w", name, err)
	}
	f, err := s.fs.OpenFile(path, os.O_WRONLY, 0o644)
	if err == nil {
		err = f.Sync()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return 0, fmt.Errorf("wal: fsyncing truncated %s: %w", name, err)
	}
	s.mTornTrunc.Inc()
	return torn, nil
}

// applyRecord applies one WAL record to the registry.
func (s *DiskStore) applyRecord(reg *registry.Registry, file string, idx int, payload []byte, stats *RecoveryStats) error {
	var r record
	if err := json.Unmarshal(payload, &r); err != nil {
		return &CorruptionError{File: file, Record: idx, Offset: -1,
			Reason: "record is not valid JSON: " + err.Error()}
	}
	switch r.Type {
	case "provision":
		if r.Provision == nil {
			return &CorruptionError{File: file, Record: idx, Offset: -1,
				Reason: "provision record without payload"}
		}
		p := r.Provision
		arch, err := rebuildArch(p.Design, p.Secret, p.Seed, p.Spares, p.RemapEpoch)
		if err != nil {
			return fmt.Errorf("wal: %s record %d: rebuilding %s: %w", file, idx, p.ID, err)
		}
		if _, err := reg.Restore(p.ID, arch, p.Seed, p.Secret); err != nil {
			return fmt.Errorf("wal: %s record %d: %w", file, idx, err)
		}
		s.mReplayProv.Inc()
		stats.ReplayedProvisions++
		return nil
	case "access":
		if r.Access == nil {
			return &CorruptionError{File: file, Record: idx, Offset: -1,
				Reason: "access record without payload"}
		}
		e, ok := reg.Get(r.Access.ID)
		if !ok {
			return &CorruptionError{File: file, Record: idx, Offset: -1,
				Reason: fmt.Sprintf("access record for unknown architecture %s", r.Access.ID)}
		}
		// Replay fires the hardware directly — not Entry.Access, which
		// would re-append. The outcome is discarded: it is fully determined
		// by the state, exactly as it was the first time.
		//lemonvet:allow logahead replay applies a record already durable in the log; appending again would double-count
		_, _ = e.Arch.Access(nems.Environment{TempCelsius: r.Access.TempCelsius})
		s.mReplayAcc.Inc()
		stats.ReplayedAccesses++
		return nil
	case "stress":
		if r.Stress == nil {
			return &CorruptionError{File: file, Record: idx, Offset: -1,
				Reason: "stress record without payload"}
		}
		e, ok := reg.Get(r.Stress.ID)
		if !ok {
			return &CorruptionError{File: file, Record: idx, Offset: -1,
				Reason: fmt.Sprintf("stress record for unknown architecture %s", r.Stress.ID)}
		}
		// Outcome discarded for the same reason as access replay: the wear
		// the pulses inflict is fully determined by the state.
		//lemonvet:allow logahead replay applies a record already durable in the log; appending again would double-count
		_, _ = e.Arch.Stress(nems.Environment{TempCelsius: r.Stress.TempCelsius}, r.Stress.Indices, r.Stress.Pulses)
		s.mReplayStress.Inc()
		stats.ReplayedStresses++
		return nil
	case "retire":
		if r.Retire == nil {
			return &CorruptionError{File: file, Record: idx, Offset: -1,
				Reason: "retire record without payload"}
		}
		e, ok := reg.Get(r.Retire.ID)
		if !ok {
			return &CorruptionError{File: file, Record: idx, Offset: -1,
				Reason: fmt.Sprintf("retire record for unknown architecture %s", r.Retire.ID)}
		}
		// A retire that no longer validates (wrong copy/physical for the
		// rebuilt hardware) is corruption: the live path only logged plans it
		// applied, so a mismatch means the history doesn't fit the state.
		//lemonvet:allow logahead replay applies a record already durable in the log; appending again would double-count
		if err := e.Arch.Retire(r.Retire.Copy, r.Retire.Physical); err != nil {
			return &CorruptionError{File: file, Record: idx, Offset: -1,
				Reason: fmt.Sprintf("retire record does not apply to %s: %v", r.Retire.ID, err)}
		}
		s.mReplayRetire.Inc()
		stats.ReplayedRetires++
		return nil
	case "remap":
		if r.Remap == nil {
			return &CorruptionError{File: file, Record: idx, Offset: -1,
				Reason: "remap record without payload"}
		}
		e, ok := reg.Get(r.Remap.ID)
		if !ok {
			return &CorruptionError{File: file, Record: idx, Offset: -1,
				Reason: fmt.Sprintf("remap record for unknown architecture %s", r.Remap.ID)}
		}
		// The record carries the FULL assignment the live path installed —
		// the remap decision was advisory, the recorded effect replays
		// verbatim, so recovery agrees bit-for-bit even if the planning
		// heuristic changes between versions.
		//lemonvet:allow logahead replay applies a record already durable in the log; appending again would double-count
		if err := e.Arch.ApplyRemap(r.Remap.Copy, r.Remap.Assign); err != nil {
			return &CorruptionError{File: file, Record: idx, Offset: -1,
				Reason: fmt.Sprintf("remap record does not apply to %s: %v", r.Remap.ID, err)}
		}
		s.mReplayRemap.Inc()
		stats.ReplayedRemaps++
		return nil
	default:
		return &CorruptionError{File: file, Record: idx, Offset: -1,
			Reason: fmt.Sprintf("unknown record type %q", r.Type)}
	}
}

// --- snapshots ------------------------------------------------------------

// Snapshot captures the full registry state, rotates to a fresh segment,
// and durably writes a compacted snapshot covering everything before the
// rotation, then deletes the segments and snapshots it obsoleted.
//
// The crash ordering is what makes this safe: the new segment is created
// and the capture taken under the exclusive barrier (no append can be
// between its durable write and its in-memory effect); the snapshot file
// appears atomically via temp-file + rename; obsolete files are deleted
// only after the new snapshot and its rename are fsynced. A crash
// between any two steps recovers from either the old snapshot (plus all
// segments) or the new one.
func (s *DiskStore) Snapshot(reg *registry.Registry) error {
	s.barrier.Lock()
	s.mu.Lock()
	if !s.recovered || s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		s.barrier.Unlock()
		if err != nil {
			return fmt.Errorf("wal: snapshot on failed store: %w", err)
		}
		return errors.New("wal: snapshot before Recover")
	}

	newSeq := s.curSeq + 1
	f, err := s.fs.OpenFile(filepath.Join(s.dir, segName(newSeq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.mu.Unlock()
		s.barrier.Unlock()
		return fmt.Errorf("wal: creating segment: %w", err)
	}

	// Capture under the exclusive barrier: every done-callback has run, so
	// each architecture's state agrees exactly with its log prefix.
	snap := snapshotFile{Format: 1, Epoch: newSeq, CreatedUnixNanos: s.now()}
	reg.Range(func(e *registry.Entry) bool {
		sa := snapshotArch{
			ID: e.ID, Seed: e.Seed, Secret: e.Secret,
			Design: e.Arch.Design(), State: e.Arch.State(),
		}
		if lv, ok := e.Arch.Leveling(); ok {
			sa.Spares = lv.Spares
			sa.RemapEpoch = lv.Epoch
		}
		snap.Archs = append(snap.Archs, sa)
		return true
	})
	sort.Slice(snap.Archs, func(i, j int) bool { return snapLess(snap.Archs[i].ID, snap.Archs[j].ID) })

	old := s.cur
	oldSeq := s.curSeq
	s.cur, s.curSeq, s.curOff, s.recsSince = f, newSeq, 0, 0
	s.mu.Unlock()
	s.barrier.Unlock()

	// Durable writes happen outside the barrier — appends may proceed into
	// the new segment while the snapshot is written, because the
	// snapshot's contents are already fixed.
	err = old.Sync()
	if cerr := old.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: sealing %s: %w", segName(oldSeq), err)
	}
	if err := s.writeSnapshotFile(&snap); err != nil {
		return err
	}
	s.mSnapshots.Inc()
	s.gSnapUnix.Set(snap.CreatedUnixNanos / int64(1e9))

	// Compact: everything before newSeq is covered by the new snapshot.
	segs, snaps, err := s.scanDir()
	if err != nil {
		return fmt.Errorf("wal: compacting: %w", err)
	}
	for _, seq := range segs {
		if seq < newSeq {
			_ = s.fs.Remove(filepath.Join(s.dir, segName(seq)))
		}
	}
	for _, epoch := range snaps {
		if epoch < newSeq {
			_ = s.fs.Remove(filepath.Join(s.dir, snapName(epoch)))
		}
	}
	return nil
}

// snapLess orders snapshot entries by numeric ID suffix so snapshot
// bytes are deterministic for a deterministic provisioning history.
func snapLess(a, b string) bool {
	na, aok := parseSeq(a, "arch-", "")
	nb, bok := parseSeq(b, "arch-", "")
	if aok && bok {
		return na < nb
	}
	return a < b
}

// writeSnapshotFile durably writes snap via temp file + atomic rename.
func (s *DiskStore) writeSnapshotFile(snap *snapshotFile) error {
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("wal: encoding snapshot: %w", err)
	}
	final := filepath.Join(s.dir, snapName(snap.Epoch))
	tmp := final + ".tmp"
	f, err := s.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating snapshot temp file: %w", err)
	}
	_, err = f.Write(appendFrame(nil, payload))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		_ = s.fs.Remove(tmp)
		return fmt.Errorf("wal: publishing snapshot: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return fmt.Errorf("wal: fsyncing data dir: %w", err)
	}
	return nil
}
