package wal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/metrics"
	"lemonade/internal/registry"
	"lemonade/internal/reliability"
	"lemonade/internal/weibull"
)

// fuzzSegment builds a well-formed one-segment WAL: one provision of a
// small real architecture plus a few access records. The fuzzer mutates
// from here into torn tails, flipped CRCs, spliced records, and garbage.
func fuzzSegment(t testing.TB) []byte {
	t.Helper()
	spec := dse.Spec{
		Dist:        weibull.MustNew(6, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         30,
		KFrac:       0.10,
		ContinuousT: true,
	}
	design, err := dse.Explore(spec)
	if err != nil {
		t.Fatal(err)
	}
	prov := registry.ProvisionRecord{
		ID:     "arch-000001",
		Seed:   42,
		Secret: []byte("0123456789abcdef"),
		Design: design,
	}
	var buf []byte
	frame := func(r record) {
		payload, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf = appendFrame(buf, payload)
	}
	frame(record{Type: "provision", Provision: &prov})
	for i := 0; i < 3; i++ {
		frame(record{Type: "access", Access: &registry.AccessRecord{ID: prov.ID, TempCelsius: 25}})
	}
	return buf
}

// fuzzRecoverable rejects inputs whose well-formed frames describe
// absurdly large architectures. Replay rebuilds provisioned hardware
// with core.Build, so a single valid frame declaring a billion-device
// design would make the fuzzer OOM on a structurally boring input; real
// recovery has the same cost profile, which operators accept because
// they wrote the log themselves. Damaged frames pass through freely —
// they are the point of the fuzz.
func fuzzRecoverable(data []byte) bool {
	if len(data) > 1<<16 {
		return false // a real segment this interesting fits in 64 KiB
	}
	ok := true
	frames, provisions := 0, 0
	_, _, _ = scanFrames("fuzz", data, func(payload []byte) error {
		frames++
		if frames > 256 {
			ok = false
			return nil
		}
		var r record
		if json.Unmarshal(payload, &r) != nil {
			return nil
		}
		// A stress frame replays pulses × indices actuations; bound the
		// product so one lucky CRC-preserving mutation cannot buy minutes
		// of spinning on a structurally boring input.
		if r.Stress != nil {
			if int64(r.Stress.Pulses)*int64(max(len(r.Stress.Indices), 1)) > 1<<12 {
				ok = false
			}
			return nil
		}
		if r.Provision == nil {
			return nil
		}
		// Each provision frame rebuilds real hardware on replay, at a cost
		// of roughly secret × N × K field operations; bound every factor
		// (including the wear-leveling spare complement, which fabricates
		// extra switches per copy) and the number of rebuilds so one exec
		// stays in the milliseconds (Build with N=4096, K=512 and a
		// 512-byte secret takes seconds).
		provisions++
		d := r.Provision.Design
		if provisions > 4 || d.N < 0 || d.Copies < 0 || d.K > 1<<6 ||
			(int64(d.N)+int64(max(r.Provision.Spares, 0)))*int64(max(d.Copies, 1)) > 1<<11 ||
			len(r.Provision.Secret) > 1<<7 {
			ok = false
		}
		return nil
	})
	return ok
}

// recoverBytes writes data as the only WAL segment of a fresh directory
// and runs full recovery over it, returning the recovered registry (nil
// when recovery refused the input).
func recoverBytes(t *testing.T, data []byte) (*registry.Registry, RecoveryStats, error) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(Config{Dir: dir, Metrics: metrics.NewRegistry()})
	if err != nil {
		return nil, RecoveryStats{}, err
	}
	defer func() { _ = st.Close() }()
	reg := registry.NewWithStore(1, st)
	stats, err := st.Recover(reg)
	if err != nil {
		return nil, stats, err
	}
	return reg, stats, nil
}

// archStates captures every recovered architecture's exact wear state.
func archStates(reg *registry.Registry) map[string]core.State {
	out := make(map[string]core.State)
	reg.Range(func(e *registry.Entry) bool {
		out[e.ID] = e.Arch.State()
		return true
	})
	return out
}

// FuzzWALFrameDecode feeds arbitrary bytes to the WAL recovery path as a
// log segment. The contract under fuzz is recover-or-refuse:
//
//   - recovery never panics, whatever the bytes;
//   - when recovery succeeds, it is idempotent — recovering the same
//     bytes again yields bit-identical wear state (recovery can never
//     mint or refund wearout, the invariant the whole package exists
//     to protect);
//   - when recovery refuses, the error is a classified one (corruption
//     or a rebuild failure), not a crash.
func FuzzWALFrameDecode(f *testing.F) {
	valid := fuzzSegment(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])     // torn tail: partial final frame
	f.Add(valid[:frameHeader-2])    // torn tail: partial first header
	f.Add([]byte{})                 // empty segment
	f.Add([]byte("not a wal file")) // garbage
	flipped := append([]byte(nil), valid...)
	flipped[4] ^= 0xff // CRC field of the first frame
	f.Add(flipped)
	spliced := append([]byte(nil), valid...)
	spliced[len(spliced)-1] ^= 0x01 // payload bit flip: CRC mismatch in last frame
	f.Add(spliced)

	f.Fuzz(func(t *testing.T, data []byte) {
		if !fuzzRecoverable(data) {
			t.Skip("well-formed frame declares an absurdly large design")
		}
		reg1, stats1, err := recoverBytes(t, data)
		if err != nil {
			return // refused cleanly; nothing was served
		}
		// Success ⇒ replaying the identical bytes must land on the
		// identical wear state: same record counts, same per-architecture
		// device states.
		reg2, stats2, err := recoverBytes(t, data)
		if err != nil {
			t.Fatalf("recovery accepted the bytes once, refused them the second time: %v", err)
		}
		if stats1.ReplayedProvisions != stats2.ReplayedProvisions ||
			stats1.ReplayedAccesses != stats2.ReplayedAccesses ||
			stats1.TornBytesTruncated != stats2.TornBytesTruncated {
			t.Fatalf("recovery stats diverged across identical inputs: %+v vs %+v", stats1, stats2)
		}
		s1, s2 := archStates(reg1), archStates(reg2)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("wear state diverged across identical inputs: %+v vs %+v", s1, s2)
		}
	})
}

// TestFuzzSeedCorpus pins the seed corpus outcomes so the fuzz target's
// classification stays honest even when nobody runs the fuzzer: the
// valid and torn segments recover, the CRC-damaged ones refuse with
// *CorruptionError.
func TestFuzzSeedCorpus(t *testing.T) {
	valid := fuzzSegment(t)

	reg, stats, err := recoverBytes(t, valid)
	if err != nil {
		t.Fatalf("valid segment refused: %v", err)
	}
	if stats.ReplayedProvisions != 1 || stats.ReplayedAccesses != 3 {
		t.Fatalf("valid segment: replayed %d/%d, want 1/3", stats.ReplayedProvisions, stats.ReplayedAccesses)
	}
	if reg.Len() != 1 {
		t.Fatalf("valid segment: %d architectures, want 1", reg.Len())
	}

	_, stats, err = recoverBytes(t, valid[:len(valid)-3])
	if err != nil {
		t.Fatalf("torn tail refused: %v", err)
	}
	if stats.TornBytesTruncated == 0 {
		t.Fatal("torn tail not truncated")
	}
	if stats.ReplayedAccesses != 2 {
		t.Fatalf("torn tail: replayed %d accesses, want 2 (the torn record must not count)", stats.ReplayedAccesses)
	}

	flipped := append([]byte(nil), valid...)
	flipped[4] ^= 0xff
	_, _, err = recoverBytes(t, flipped)
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("flipped CRC: got %v, want *CorruptionError", err)
	}
}
