package wal

import (
	"errors"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"lemonade/internal/fault"
	"lemonade/internal/registry"
)

// gatedFS wraps the real filesystem so a test can hold a segment fsync
// mid-flight and decide its outcome — the choreography that
// deterministically assembles a multi-ticket commit group: while the
// committer is parked inside one group's Sync, every Append issued
// meanwhile queues up and must land in the NEXT group together.
type gatedFS struct {
	fault.OS
	mu      sync.Mutex
	armed   bool          // guarded by mu; gate segment-file syncs
	started chan struct{} // a gated Sync announces itself here
	verdict chan error    // then returns this (nil = really sync)
}

func (g *gatedFS) arm(on bool) {
	g.mu.Lock()
	g.armed = on
	g.mu.Unlock()
}

func (g *gatedFS) OpenFile(name string, flag int, perm os.FileMode) (fault.File, error) {
	f, err := fault.OS{}.OpenFile(name, flag, perm)
	if err != nil || !strings.Contains(name, segPrefix) {
		return f, err
	}
	return &gatedFile{File: f, g: g}, nil
}

type gatedFile struct {
	fault.File
	g *gatedFS
}

func (f *gatedFile) Sync() error {
	f.g.mu.Lock()
	armed := f.g.armed
	f.g.mu.Unlock()
	if !armed {
		return f.File.Sync()
	}
	f.g.started <- struct{}{}
	if err := <-f.g.verdict; err != nil {
		return err
	}
	return f.File.Sync()
}

func accessRec(id string, i int) registry.Record {
	return registry.Record{Access: &registry.AccessRecord{ID: id, TempCelsius: accessEnv(i).TempCelsius}}
}

// TestGroupFsyncFailureFailsAllTicketsClosed is the mid-group fault
// contract: when one group's fsync fails, EVERY ticket in that group
// resolves with the same *GroupError — no passenger may treat its record
// as durable, so no budget is minted — and the store survives (an fsync
// failure is not poison: the committer truncates the segment back to the
// known-synced boundary, so the failed batch is never resurrected under
// later successful commits).
func TestGroupFsyncFailureFailsAllTicketsClosed(t *testing.T) {
	dir := t.TempDir()
	g := &gatedFS{started: make(chan struct{}), verdict: make(chan error)}
	st := openStoreFS(t, dir, 0, g)
	reg, e := provisionVia(t, st)

	// Park the committer inside an innocent group's fsync.
	g.arm(true)
	tktX, err := st.Append([]registry.Record{accessRec(e.ID, 0)})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started

	// Three more appends queue behind the parked group.
	var tkts [3]registry.Ticket
	for i := range tkts {
		tkt, err := st.Append([]registry.Record{accessRec(e.ID, i+1)})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		tkts[i] = tkt
	}

	// Release the parked group (it commits), then fail the batched one.
	injected := errors.New("injected group fsync failure")
	g.verdict <- nil
	if werr := tktX.Wait(); werr != nil {
		t.Fatalf("parked group failed: %v", werr)
	}
	tktX.Done()
	<-g.started
	g.verdict <- injected
	g.arm(false)

	var gerrs [3]*GroupError
	for i, tkt := range tkts {
		werr := tkt.Wait()
		if werr == nil {
			t.Fatalf("ticket %d of the failed group resolved clean", i)
		}
		if !errors.Is(werr, injected) {
			t.Fatalf("ticket %d error %v does not wrap the injected failure", i, werr)
		}
		if !errors.As(werr, &gerrs[i]) {
			t.Fatalf("ticket %d error %v is not a *GroupError", i, werr)
		}
		tkt.Done() // must be a safe no-op after a failed Wait
	}
	if gerrs[0] != gerrs[1] || gerrs[1] != gerrs[2] {
		t.Fatalf("tickets resolved with distinct errors: %v / %v / %v", gerrs[0], gerrs[1], gerrs[2])
	}
	if gerrs[0].CommitGroup() == 0 {
		t.Fatal("GroupError carries no commit group ID")
	}

	// The store is still serving: the next append commits cleanly…
	tkt4, err := st.Append([]registry.Record{accessRec(e.ID, 4)})
	if err != nil {
		t.Fatalf("append after failed group refused: %v", err)
	}
	if werr := tkt4.Wait(); werr != nil {
		t.Fatalf("append after failed group did not commit: %v", werr)
	}
	tkt4.Done()

	// No resurrection: the failed group's bytes were truncated back out
	// of the segment at fail time, so the later successful append did not
	// land after phantom frames — recovery replays exactly the two
	// committed accesses, not the three whose callers failed closed.
	reg2, _, stats := recoverInto(t, dir)
	if stats.ReplayedAccesses != 2 {
		t.Fatalf("recovery replayed %d accesses, want exactly the 2 committed (failed batch must not resurrect)",
			stats.ReplayedAccesses)
	}
	e2, ok := reg2.Get(e.ID)
	if !ok {
		t.Fatalf("recovered registry has no %s", e.ID)
	}
	if total, _ := e2.Arch.Accesses(); total != uint64(stats.ReplayedAccesses) {
		t.Fatalf("recovered wear total %d != replayed records %d", total, stats.ReplayedAccesses)
	}

	// And the snapshot barrier was not leaked by the failed group.
	if err := st.Snapshot(reg); err != nil {
		t.Fatalf("snapshot after failed group: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupBarrierHeldUntilLastDone pins the refcounted group hold: a
// commit group takes ONE shared snapshot-barrier hold, and it releases
// only when the LAST member's Done runs — a snapshot arriving while any
// member is still applying its in-memory effect must wait for it.
func TestGroupBarrierHeldUntilLastDone(t *testing.T) {
	dir := t.TempDir()
	g := &gatedFS{started: make(chan struct{}), verdict: make(chan error)}
	st := openStoreFS(t, dir, 0, g)
	reg, e := provisionVia(t, st)

	// Park the committer so three appends pile into one group.
	g.arm(true)
	tkt0, err := st.Append([]registry.Record{accessRec(e.ID, 0)})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	var tkts [3]registry.Ticket
	for i := range tkts {
		tkt, err := st.Append([]registry.Record{accessRec(e.ID, i+1)})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		tkts[i] = tkt
	}
	g.verdict <- nil
	if err := tkt0.Wait(); err != nil {
		t.Fatal(err)
	}
	tkt0.Done()
	<-g.started
	g.arm(false)
	g.verdict <- nil
	for i, tkt := range tkts {
		if err := tkt.Wait(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}

	// Two of three members applied: the group's hold is still out, so a
	// snapshot must not complete yet.
	tkts[0].Done()
	tkts[1].Done()
	snapDone := make(chan error, 1)
	go func() { snapDone <- st.Snapshot(reg) }()
	select {
	case serr := <-snapDone:
		t.Fatalf("snapshot completed with a group member still applying (err=%v)", serr)
	case <-time.After(50 * time.Millisecond):
	}
	tkts[2].Done()
	if serr := <-snapDone; serr != nil {
		t.Fatalf("snapshot after last Done: %v", serr)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotPendingDuringGroupCommit is the wedge regression for the
// commit/snapshot interleaving: a snapshot's exclusive barrier Lock goes
// pending while one group's hold is outstanding and another multi-member
// group is queued behind it. Everything must drain — the snapshot
// rotates once the hold drops, the queued group commits into the rotated
// segment, nobody deadlocks. (A per-member RLock loop in the committer
// deadlocks under this pressure: a pending writer blocks its next RLock
// while the writer waits on the RLocks it already holds.)
func TestSnapshotPendingDuringGroupCommit(t *testing.T) {
	dir := t.TempDir()
	g := &gatedFS{started: make(chan struct{}), verdict: make(chan error)}
	st := openStoreFS(t, dir, 0, g)
	reg, e := provisionVia(t, st)

	g.arm(true)
	tkt0, err := st.Append([]registry.Record{accessRec(e.ID, 0)})
	if err != nil {
		t.Fatal(err)
	}
	<-g.started // group A parked in its fsync, barrier hold outstanding

	var tkts [4]registry.Ticket
	for i := range tkts {
		tkt, err := st.Append([]registry.Record{accessRec(e.ID, i+1)})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		tkts[i] = tkt
	}

	// The snapshot's Lock goes pending against group A's hold.
	snapDone := make(chan error, 1)
	go func() { snapDone <- st.Snapshot(reg) }()
	time.Sleep(20 * time.Millisecond)

	// Release group A and retire it; the pending writer now races the
	// committer's hold for group B and must win (pending writers block
	// new read holds), so B lands in the rotated segment.
	g.arm(false)
	g.verdict <- nil
	if err := tkt0.Wait(); err != nil {
		t.Fatal(err)
	}
	tkt0.Done()

	for i, tkt := range tkts {
		if err := tkt.Wait(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
		tkt.Done()
	}
	if serr := <-snapDone; serr != nil {
		t.Fatalf("snapshot: %v", serr)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The rotation happened between the groups: the snapshot covers group
	// A's record, segment 2 replays exactly group B's four.
	_, _, stats := recoverInto(t, dir)
	if stats.SnapshotEpoch != 2 || stats.Segments != 1 || stats.ReplayedAccesses != 4 {
		t.Fatalf("recovery = %+v, want snapshot epoch 2 with 4 replayed accesses from one segment", stats)
	}
}

// TestSnapshotCommitInterleavingStress hammers snapshots against live
// group commits. Under a committer that deadlocks when a snapshot's
// Lock interleaves with its barrier acquisition, this test wedges (and
// times out); under the single refcounted hold it drains every round.
func TestSnapshotCommitInterleavingStress(t *testing.T) {
	dir := t.TempDir()
	st := openStoreFS(t, dir, 0, fault.OS{})
	reg, e := provisionVia(t, st)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tkt, err := st.Append([]registry.Record{accessRec(e.ID, i%5)})
				if err != nil {
					return // store closing
				}
				if tkt.Wait() == nil {
					tkt.Done()
				}
			}
		}()
	}
	for i := 0; i < 25; i++ {
		if err := st.Snapshot(reg); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTornBatchBoundaryRecovery crashes a multi-record group mid-write:
// the batch write tears partway through (short write) and even the
// repair truncate fails, so the segment keeps a torn tail inside the
// batch. The ticket fails closed, the store poisons itself, and recovery
// truncates the tail back to the last complete record — twice, with
// bit-identical results.
func TestTornBatchBoundaryRecovery(t *testing.T) {
	scenario := func(dir string, fsys fault.FS) (registry.Ticket, error) {
		st := openStoreFS(t, dir, 0, fsys)
		_, e := provisionVia(t, st)
		recs := []registry.Record{accessRec(e.ID, 0), accessRec(e.ID, 1), accessRec(e.ID, 2)}
		tkt, err := st.Append(recs)
		if err != nil {
			return nil, err
		}
		return tkt, tkt.Wait()
	}

	// Recording pass: learn which op writes the 3-record batch (the
	// second segment write; the provision is the first).
	rec := fault.NewInjector(fault.OS{}, fault.Plan{}, fault.WithOpLog())
	if tkt, err := scenario(t.TempDir(), rec); err != nil {
		t.Fatalf("recording pass: %v", err)
	} else {
		tkt.Done()
	}
	var batchWrite uint64
	for _, op := range rec.OpLog() {
		if op.Kind == fault.OpWrite && strings.HasSuffix(op.Path, segName(1)) {
			batchWrite = op.N // keep the last = the batch write
		}
	}
	if batchWrite == 0 {
		t.Fatal("recording pass never wrote the segment")
	}

	// Target pass: tear the batch write AND fail the repair truncate that
	// immediately follows it — a crash frozen at the worst boundary.
	dir := t.TempDir()
	inj := fault.NewInjector(fault.OS{}, fault.Plan{Rules: []fault.Rule{
		{Op: batchWrite, Kind: fault.ShortWrite},
		{Op: batchWrite + 1, Kind: fault.NoSpace},
	}})
	_, err := scenario(dir, inj)
	if err == nil {
		t.Fatal("torn batch write reported success")
	}
	var ge *GroupError
	if !errors.As(err, &ge) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn batch error = %v, want *GroupError wrapping the injected fault", err)
	}

	// Recovery truncates the torn tail inside the batch and replays only
	// the complete prefix.
	reg2, _, stats := recoverInto(t, dir)
	if stats.TornBytesTruncated == 0 {
		t.Fatal("recovery found no torn tail after a short batch write")
	}
	if stats.ReplayedAccesses >= 3 {
		t.Fatalf("replayed %d accesses from a torn 3-record batch", stats.ReplayedAccesses)
	}
	e2, ok := reg2.Get("arch-000001")
	if !ok {
		t.Fatal("recovered registry lost the architecture")
	}
	if !reflect.DeepEqual(e2.Arch.State(), twin(t, stats.ReplayedAccesses).State()) {
		t.Fatalf("recovered state differs from twin after %d replayed accesses", stats.ReplayedAccesses)
	}

	// Double recovery is bit-identical.
	reg3, _, stats2 := recoverInto(t, dir)
	if stats2.ReplayedAccesses != stats.ReplayedAccesses || stats2.TornBytesTruncated != 0 {
		t.Fatalf("second recovery diverged: %+v then %+v", stats, stats2)
	}
	e3, _ := reg3.Get("arch-000001")
	if !reflect.DeepEqual(e3.Arch.State(), e2.Arch.State()) {
		t.Fatal("double recovery is not bit-identical")
	}
}
