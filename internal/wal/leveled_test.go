package wal

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/registry"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

// testLeveling is the wear-leveling variant used across the crash tests:
// a modest spare complement and a short rotation epoch so a handful of
// operations exercises the full retire/remap record path.
func testLeveling() core.Leveling { return core.Leveling{Spares: 8, Epoch: 3} }

// provisionLeveledVia recovers st into a fresh registry and provisions
// one wear-leveled architecture, returning both.
func provisionLeveledVia(t *testing.T, st *DiskStore) (*registry.Registry, *registry.Entry) {
	t.Helper()
	reg := registry.NewWithStore(4, st)
	if _, err := st.Recover(reg); err != nil {
		t.Fatal(err)
	}
	arch, err := core.BuildLeveled(testDesign(t), testSecret(), testLeveling(), rng.New(testSeed))
	if err != nil {
		t.Fatal(err)
	}
	e, err := reg.Provision(arch, testSeed, testSecret())
	if err != nil {
		t.Fatal(err)
	}
	return reg, e
}

// leveledTwin builds the uninterrupted reference: the same leveled
// architecture behind an in-memory registry (maintenance decisions are
// deterministic functions of wear state, so the same schedule produces
// the same rotations), played through ops [0, n).
func leveledTwin(t *testing.T, n int) *registry.Entry {
	t.Helper()
	reg := registry.New(4)
	arch, err := core.BuildLeveled(testDesign(t), testSecret(), testLeveling(), rng.New(testSeed))
	if err != nil {
		t.Fatal(err)
	}
	e, err := reg.Provision(arch, testSeed, testSecret())
	if err != nil {
		t.Fatal(err)
	}
	driveLeveled(t, e, 0, n)
	return e
}

// driveLeveled plays ops [from, from+n) of the deterministic mixed
// schedule through an entry: every 4th op is a targeted hot stress (the
// attacker), the rest are legitimate accesses on the shared environment
// schedule.
func driveLeveled(t *testing.T, e *registry.Entry, from, n int) {
	t.Helper()
	ctx := context.Background()
	for i := from; i < from+n; i++ {
		if i%4 == 1 {
			if _, err := e.Stress(ctx, nems.Environment{TempCelsius: 400}, []int{0, 1}, 1); err != nil {
				t.Fatalf("stress %d: %v", i, err)
			}
		} else if _, err := e.Access(ctx, accessEnv(i)); err != nil &&
			!errors.Is(err, core.ErrTransient) && !errors.Is(err, core.ErrDecodeFailed) {
			t.Fatalf("access %d: %v", i, err)
		}
	}
}

// TestLeveledCrashRecoveryGolden is the wear-leveling acceptance test:
// drive a leveled architecture through a mixed access/attack schedule
// (rotations included), crash without shutdown, restart — and the
// recovered architecture is bit-identical to an uninterrupted twin, both
// at the crash point and through further shared traffic.
func TestLeveledCrashRecoveryGolden(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 0)
	_, e := provisionLeveledVia(t, st)
	const ops = 24
	driveLeveled(t, e, 0, ops)
	if e.Arch.Remaps() == 0 {
		t.Fatal("schedule never rotated the leveled architecture; the test would not cover remap replay")
	}
	preState := e.Arch.State()
	// Crash: the store is abandoned mid-life, never Closed or snapshotted.

	reg2, _, stats := recoverInto(t, dir)
	if stats.ReplayedStresses == 0 || stats.ReplayedRemaps == 0 {
		t.Fatalf("recovery stats %+v: want stress and remap records replayed", stats)
	}
	e2, ok := reg2.Get(e.ID)
	if !ok {
		t.Fatalf("recovered registry has no %s", e.ID)
	}
	if !reflect.DeepEqual(e2.Arch.State(), preState) {
		t.Fatal("recovered leveled state differs from the state at the crash")
	}
	ref := leveledTwin(t, ops)
	if !reflect.DeepEqual(e2.Arch.State(), ref.Arch.State()) {
		t.Fatal("recovered leveled state differs from uninterrupted twin")
	}
	if e2.Arch.Remaps() != ref.Arch.Remaps() || e2.Arch.Stressed() != ref.Arch.Stressed() {
		t.Fatalf("recovered counters (remaps %d, stressed %d) != twin (%d, %d)",
			e2.Arch.Remaps(), e2.Arch.Stressed(), ref.Arch.Remaps(), ref.Arch.Stressed())
	}

	// The future must play out identically too: same rotations, same wear.
	driveLeveled(t, e2, ops, 8)
	driveLeveled(t, ref, ops, 8)
	if !reflect.DeepEqual(e2.Arch.State(), ref.Arch.State()) {
		t.Fatal("post-recovery trajectory diverges from the twin")
	}
}

// TestCrashMidRemapRecoversIdentically pins the torn-maintenance
// contract: a crash that tears the remap record off the end of a
// maintenance batch leaves its retirements durable and the rotation
// gone. Recovery repairs the tail, replays deterministically — twice,
// bit-identically — never mints wear budget, and the interrupted
// rotation is re-planned and completed by the next live operation.
func TestCrashMidRemapRecoversIdentically(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 0)
	_, e := provisionLeveledVia(t, st)
	ctx := context.Background()
	hot := nems.Environment{TempCelsius: 400}
	for i := 0; i < 200 && e.Arch.Remaps() == 0; i++ {
		if _, err := e.Stress(ctx, hot, []int{0, 1}, 1); err != nil {
			t.Fatalf("stress %d: %v", i, err)
		}
	}
	if e.Arch.Remaps() == 0 {
		t.Fatal("targeted stress never triggered a rotation")
	}
	preStressed := e.Arch.Stressed()

	// The loop stops the moment the first rotation lands, so the final
	// frame of the segment is that maintenance batch's remap record. Tear
	// it mid-frame, as a crash between write and fsync would.
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	remapStart := int64(-1)
	for off := int64(0); off+frameHeader <= int64(len(data)); {
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		end := off + frameHeader + n
		if end > int64(len(data)) {
			break
		}
		var r record
		if json.Unmarshal(data[off+frameHeader:end], &r) == nil && r.Type == "remap" {
			remapStart = off
		}
		off = end
	}
	if remapStart < 0 {
		t.Fatal("no remap frame in the segment")
	}
	if err := os.Truncate(seg, remapStart+5); err != nil {
		t.Fatal(err)
	}

	reg2, _, stats2 := recoverInto(t, dir)
	if stats2.TornBytesTruncated != 5 {
		t.Fatalf("TornBytesTruncated = %d, want 5", stats2.TornBytesTruncated)
	}
	if stats2.ReplayedRemaps != 0 {
		t.Fatalf("torn rotation replayed: %d remaps", stats2.ReplayedRemaps)
	}
	e2, ok := reg2.Get(e.ID)
	if !ok {
		t.Fatalf("recovered registry has no %s", e.ID)
	}
	state2, err := json.Marshal(e2.Arch.State())
	if err != nil {
		t.Fatal(err)
	}

	// Second recovery over the repaired log: bit-identical wear state.
	reg3, _, stats3 := recoverInto(t, dir)
	if stats3.TornBytesTruncated != 0 {
		t.Fatalf("second recovery truncated again: %d bytes", stats3.TornBytesTruncated)
	}
	e3, _ := reg3.Get(e.ID)
	state3, err := json.Marshal(e3.Arch.State())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(state2, state3) {
		t.Fatalf("double recovery diverged:\n first %s\nsecond %s", state2, state3)
	}

	// Recovery can only ever drop the torn suffix, never mint budget: every
	// stress durably logged before the crash is present, and no more.
	if got := e3.Arch.Stressed(); got != preStressed {
		t.Fatalf("recovered stress budget %d != logged %d", got, preStressed)
	}
	if e3.Arch.Remaps() != 0 {
		t.Fatal("the torn rotation came back from the dead")
	}

	// The interrupted rotation is advisory state, not lost state: the next
	// live operation re-plans against the recovered wear and completes it.
	if _, err := e3.Stress(ctx, hot, []int{0, 1}, 1); err != nil {
		t.Fatal(err)
	}
	if e3.Arch.Remaps() == 0 {
		t.Fatal("maintenance never resumed the interrupted rotation")
	}
}

// TestSnapshotCarriesLeveling: a snapshot of a leveled architecture pins
// the variant (spares, epoch) and the full remap/retire overlay, so a
// snapshot-based recovery rebuilds the identical leveled hardware.
func TestSnapshotCarriesLeveling(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, 0)
	reg, e := provisionLeveledVia(t, st)
	driveLeveled(t, e, 0, 12)
	if err := st.Snapshot(reg); err != nil {
		t.Fatal(err)
	}
	preState := e.Arch.State()
	lv, ok := e.Arch.Leveling()
	if !ok {
		t.Fatal("entry lost its leveling")
	}

	reg2, _, stats := recoverInto(t, dir)
	if stats.SnapshotEpoch != 2 || stats.ReplayedRecords() != 0 {
		t.Fatalf("recovery stats %+v: want pure snapshot recovery at epoch 2", stats)
	}
	e2, ok := reg2.Get(e.ID)
	if !ok {
		t.Fatalf("recovered registry has no %s", e.ID)
	}
	lv2, ok := e2.Arch.Leveling()
	if !ok || lv2 != lv {
		t.Fatalf("snapshot dropped the leveling variant: got %+v ok=%v, want %+v", lv2, ok, lv)
	}
	if !reflect.DeepEqual(e2.Arch.State(), preState) {
		t.Fatal("snapshot recovery of leveled state differs from pre-crash state")
	}

	// Post-snapshot traffic (segment 2) continues the same trajectory.
	driveLeveled(t, e, 12, 6)
	driveLeveled(t, e2, 12, 6)
	if !reflect.DeepEqual(e2.Arch.State(), e.Arch.State()) {
		t.Fatal("post-snapshot trajectory diverges between original and recovered entry")
	}
}

// wearFuzzSegment builds a well-formed one-segment WAL exercising every
// wear-leveling record type: a leveled provision, a hot targeted stress,
// an access, then a maintenance batch (retire + full-assignment remap).
// It returns the segment and the byte offset of the remap frame so seeds
// can model crashes inside the maintenance batch.
func wearFuzzSegment(tb testing.TB) ([]byte, int) {
	tb.Helper()
	spec := dse.Spec{
		Dist:        weibull.MustNew(6, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         30,
		KFrac:       0.10,
		ContinuousT: true,
	}
	design, err := dse.Explore(spec)
	if err != nil {
		tb.Fatal(err)
	}
	prov := registry.ProvisionRecord{
		ID:         "arch-000001",
		Seed:       42,
		Secret:     []byte("0123456789abcdef"),
		Design:     design,
		Spares:     2,
		RemapEpoch: 1,
	}
	var buf []byte
	frame := func(r record) {
		payload, err := json.Marshal(r)
		if err != nil {
			tb.Fatal(err)
		}
		buf = appendFrame(buf, payload)
	}
	frame(record{Type: "provision", Provision: &prov})
	frame(record{Type: "stress", Stress: &registry.StressRecord{ID: prov.ID, TempCelsius: 400, Indices: []int{0, 1}, Pulses: 2}})
	frame(record{Type: "access", Access: &registry.AccessRecord{ID: prov.ID, TempCelsius: 25}})
	frame(record{Type: "retire", Retire: &registry.RetireRecord{ID: prov.ID, Copy: 0, Physical: 0}})
	remapStart := len(buf)
	assign := make([]int, design.N)
	for i := range assign {
		assign[i] = i
	}
	assign[0] = design.N // rotate logical slot 0 onto the first spare
	frame(record{Type: "remap", Remap: &registry.RemapRecord{ID: prov.ID, Copy: 0, Assign: assign}})
	return buf, remapStart
}

// FuzzWearRecordDecode feeds arbitrary bytes to WAL recovery with the
// wear-leveling record types (stress/retire/remap) in the seed mix. The
// contract is the same recover-or-refuse one as FuzzWALFrameDecode —
// recovery never panics, a success is idempotent (recovering identical
// bytes twice yields bit-identical wear state, so recovery can never
// mint or refund wearout), and a refusal is a classified error — now
// covering the records an adversarial wearout campaign writes.
func FuzzWearRecordDecode(f *testing.F) {
	valid, remapStart := wearFuzzSegment(f)
	f.Add(valid)
	f.Add(valid[:remapStart])   // crash between retire and remap: rotation never logged
	f.Add(valid[:remapStart+5]) // crash mid-remap-frame: torn rotation
	flipped := append([]byte(nil), valid...)
	flipped[remapStart+4] ^= 0xff // remap frame CRC damage
	f.Add(flipped)
	hijacked := append([]byte(nil), valid...)
	hijacked[remapStart+3] = 0xff // remap frame length blown past maxRecordLen
	f.Add(hijacked)

	f.Fuzz(func(t *testing.T, data []byte) {
		if !fuzzRecoverable(data) {
			t.Skip("well-formed frame declares an absurdly expensive replay")
		}
		reg1, stats1, err := recoverBytes(t, data)
		if err != nil {
			return // refused cleanly; nothing was served
		}
		reg2, stats2, err := recoverBytes(t, data)
		if err != nil {
			t.Fatalf("recovery accepted the bytes once, refused them the second time: %v", err)
		}
		if stats1 != stats2 {
			t.Fatalf("recovery stats diverged across identical inputs: %+v vs %+v", stats1, stats2)
		}
		s1, s2 := archStates(reg1), archStates(reg2)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("wear state diverged across identical inputs: %+v vs %+v", s1, s2)
		}
	})
}

// TestWearFuzzSeedCorpus pins the seed corpus outcomes so the fuzz
// target's classification stays honest even when nobody runs the fuzzer,
// and keeps the checked-in corpus files in sync with the generator
// (regenerate with LEMONADE_UPDATE_FUZZ_CORPUS=1).
func TestWearFuzzSeedCorpus(t *testing.T) {
	valid, remapStart := wearFuzzSegment(t)

	reg, stats, err := recoverBytes(t, valid)
	if err != nil {
		t.Fatalf("valid leveled segment refused: %v", err)
	}
	if stats.ReplayedProvisions != 1 || stats.ReplayedAccesses != 1 ||
		stats.ReplayedStresses != 1 || stats.ReplayedRetires != 1 || stats.ReplayedRemaps != 1 {
		t.Fatalf("valid segment stats %+v, want one record of each type replayed", stats)
	}
	e, ok := reg.Get("arch-000001")
	if !ok {
		t.Fatal("valid segment: architecture missing")
	}
	if e.Arch.Remaps() != 1 || e.Arch.Stressed() != 2 {
		t.Fatalf("valid segment: remaps %d stressed %d, want 1 and 2", e.Arch.Remaps(), e.Arch.Stressed())
	}

	// Crash between retire and remap: the retirement is durable, the
	// rotation is not, and recovery serves exactly that.
	regBoundary, stats2, err := recoverBytes(t, valid[:remapStart])
	if err != nil {
		t.Fatalf("retire-without-remap prefix refused: %v", err)
	}
	if stats2.ReplayedRetires != 1 || stats2.ReplayedRemaps != 0 {
		t.Fatalf("prefix stats %+v, want the retire without the remap", stats2)
	}
	eb, _ := regBoundary.Get("arch-000001")
	if eb.Arch.Remaps() != 0 {
		t.Fatal("prefix recovery invented a rotation")
	}

	// Crash mid-remap-frame: the torn rotation truncates away and the
	// state equals the clean-boundary crash exactly.
	regTorn, stats3, err := recoverBytes(t, valid[:remapStart+5])
	if err != nil {
		t.Fatalf("torn remap refused: %v", err)
	}
	if stats3.TornBytesTruncated != 5 {
		t.Fatalf("torn remap: truncated %d bytes, want 5", stats3.TornBytesTruncated)
	}
	if !reflect.DeepEqual(archStates(regTorn), archStates(regBoundary)) {
		t.Fatal("torn-remap state differs from clean-boundary state")
	}

	// CRC damage inside the maintenance batch refuses outright.
	flipped := append([]byte(nil), valid...)
	flipped[remapStart+4] ^= 0xff
	_, _, err = recoverBytes(t, flipped)
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("flipped remap CRC: got %v, want *CorruptionError", err)
	}
	// An absurd length field is classified as corruption, not as a torn
	// tail — it must refuse, never swallow the batch.
	hijacked := append([]byte(nil), valid...)
	hijacked[remapStart+3] = 0xff
	if _, _, err := recoverBytes(t, hijacked); !errors.As(err, &ce) {
		t.Fatalf("length-damaged remap frame: got %v, want *CorruptionError", err)
	}

	seeds := map[string][]byte{
		"valid-leveled-segment": valid,
		"retire-without-remap":  valid[:remapStart],
		"torn-remap":            valid[:remapStart+5],
		"flipped-remap-crc":     flipped,
		"hijacked-remap-len":    hijacked,
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWearRecordDecode")
	for name, data := range seeds {
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		path := filepath.Join(dir, name)
		if os.Getenv("LEMONADE_UPDATE_FUZZ_CORPUS") != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("seed corpus %s missing (regenerate with LEMONADE_UPDATE_FUZZ_CORPUS=1): %v", name, err)
		}
		if string(got) != want {
			t.Fatalf("seed corpus %s is stale; regenerate with LEMONADE_UPDATE_FUZZ_CORPUS=1", name)
		}
	}
}
