package reliability

import (
	"math"
	"testing"

	"lemonade/internal/nems"
	"lemonade/internal/rng"
	"lemonade/internal/structure"
	"lemonade/internal/weibull"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestCriteriaValidation(t *testing.T) {
	if err := DefaultCriteria.Validate(); err != nil {
		t.Errorf("default criteria invalid: %v", err)
	}
	bad := []Criteria{
		{MinWork: 0, MaxOverrun: 0.01},
		{MinWork: 1, MaxOverrun: 0.01},
		{MinWork: 0.99, MaxOverrun: 0},
		{MinWork: 0.5, MaxOverrun: 0.6},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should be invalid: %+v", i, c)
		}
	}
}

func TestWorksThroughMonotone(t *testing.T) {
	m := Model{Dist: weibull.MustNew(14, 8), N: 100, K: 10}
	prev := 1.0
	for tt := 0; tt <= 40; tt++ {
		cur := m.WorksThrough(tt)
		if cur > prev+1e-12 {
			t.Fatalf("WorksThrough increased at t=%d", tt)
		}
		prev = cur
	}
	if m.WorksThrough(0) != 1 {
		t.Error("WorksThrough(0) must be 1")
	}
}

func TestMeetsCriteriaFig3c(t *testing.T) {
	// α=20, β=12, n=60, k=30 degrades from ~92% to ~2% between accesses
	// 19 and 20 (continuous convention), so it meets a 90%/5% criterion at
	// t=19 with window 0.
	m := Model{Dist: weibull.MustNew(20, 12), N: 60, K: 30}
	c := Criteria{MinWork: 0.90, MaxOverrun: 0.05}
	if !m.MeetsCriteria(c, 19, 0) {
		t.Errorf("structure should meet 90%%/5%% at t=19: W(19)=%g W(20)=%g",
			m.WorksThrough(19), m.WorksThrough(20))
	}
	if m.MeetsCriteria(DefaultCriteria, 25, 0) {
		t.Error("structure cannot be 99% reliable at t=25")
	}
}

func TestWindowShrinksWithK(t *testing.T) {
	d := weibull.MustNew(20, 12)
	w := func(k int) int {
		m := Model{Dist: d, N: 60, K: k}
		t1, t2 := m.Window(0.99, 0.01)
		return t2 - t1
	}
	// Integer access counts quantize the window; the k=30 window must not
	// be wider, and k close to n must stretch it out again (paper §4.1.4).
	if w(30) > w(1) {
		t.Errorf("k=30 window (%d) should not be wider than k=1 window (%d)", w(30), w(1))
	}
	if w(58) <= w(30) {
		t.Errorf("k near n should stretch the window: w(58)=%d w(30)=%d", w(58), w(30))
	}
}

func TestWindowEndpoints(t *testing.T) {
	m := Model{Dist: weibull.MustNew(10, 12), N: 40, K: 1}
	t1, t2 := m.Window(0.99, 0.01)
	if t1 >= t2 {
		t.Fatalf("window inverted: [%d, %d]", t1, t2)
	}
	if m.WorksThrough(t1) < 0.99 {
		t.Error("t1 not reliable enough")
	}
	if m.WorksThrough(t1+1) >= 0.99 {
		t.Error("t1 not maximal")
	}
	if m.WorksThrough(t2) > 0.01 {
		t.Error("t2 not degraded enough")
	}
}

func TestAccessPMFSumsToOne(t *testing.T) {
	m := Model{Dist: weibull.MustNew(12, 8), N: 50, K: 5}
	pmf := m.AccessPMF()
	var sum float64
	for _, p := range pmf {
		if p < -1e-12 {
			t.Fatalf("negative pmf entry %g", p)
		}
		sum += p
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Errorf("pmf sums to %g", sum)
	}
}

func TestAccessMomentsAgainstMonteCarlo(t *testing.T) {
	d := weibull.MustNew(12, 8)
	m := Model{Dist: d, N: 30, K: 3}
	mean, variance := m.AccessMoments()
	r := rng.New(77)
	const trials = 3000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		p, err := structure.NewParallel(d, 30, 3, r)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(structure.CountSuccessfulAccesses(p, nems.RoomTemp, 100))
		sum += got
		sumSq += got * got
	}
	empMean := sum / trials
	empVar := sumSq/trials - empMean*empMean
	// The simulator's ceil-discretization biases counts up by <1 access.
	if empMean < mean-0.2 || empMean > mean+1.2 {
		t.Errorf("MC mean %g vs analytic %g", empMean, mean)
	}
	if empVar > 4*variance+1 {
		t.Errorf("MC variance %g vs analytic %g", empVar, variance)
	}
}

func TestSystemMinUsageProb(t *testing.T) {
	m := Model{Dist: weibull.MustNew(20, 12), N: 60, K: 30}
	s := System{Copy: m, Copies: 10}
	p1 := s.MinUsageProb(19)
	single := m.WorksThrough(19)
	if !almostEq(p1, math.Pow(single, 10), 1e-9) {
		t.Errorf("MinUsageProb = %g, want %g", p1, math.Pow(single, 10))
	}
	if s.TotalDevices() != 600 {
		t.Errorf("TotalDevices = %d", s.TotalDevices())
	}
}

func TestSystemExpectedTotal(t *testing.T) {
	m := Model{Dist: weibull.MustNew(12, 8), N: 50, K: 5}
	mean, _ := m.AccessMoments()
	s := System{Copy: m, Copies: 100}
	total, sd := s.ExpectedTotalAccesses()
	if !almostEq(total, 100*mean, 1e-9) {
		t.Errorf("system mean %g, want %g", total, 100*mean)
	}
	if sd <= 0 {
		t.Error("system sd should be positive")
	}
	// quantiles bracket the mean
	if s.UpperBoundQuantile(0.99) <= total || s.UpperBoundQuantile(0.01) >= total {
		t.Error("quantiles should bracket the mean")
	}
}

func TestNormQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0}, {0.975, 1.959964}, {0.025, -1.959964}, {0.99, 2.326348}, {1e-4, -3.719016},
	}
	for _, c := range cases {
		if got := NormQuantile(c.p); !almostEq(got, c.want, 1e-5) {
			t.Errorf("NormQuantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Error("extreme quantiles should be infinite")
	}
}

func TestRelaxedCriteriaRaiseUpperBound(t *testing.T) {
	// Fig 4c's mechanism: relaxing MaxOverrun enlarges the feasible set —
	// anything meeting the strict criterion meets the relaxed one, and some
	// (t, structure) pairs meet only the relaxed one.
	m := Model{Dist: weibull.MustNew(14, 8), N: 141, K: 15}
	strict := Criteria{MinWork: 0.99, MaxOverrun: 0.01}
	relaxed := Criteria{MinWork: 0.99, MaxOverrun: 0.10}
	foundStrict, foundRelaxedOnly := false, false
	for tt := 1; tt < 60; tt++ {
		s := m.MeetsCriteria(strict, tt, 0)
		r := m.MeetsCriteria(relaxed, tt, 0)
		if s && !r {
			t.Fatalf("t=%d meets strict but not relaxed criteria", tt)
		}
		foundStrict = foundStrict || s
		foundRelaxedOnly = foundRelaxedOnly || (r && !s)
	}
	if !foundStrict {
		t.Log("note: no t meets the strict criterion for this structure (allowed)")
	}
	if !foundRelaxedOnly && !foundStrict {
		t.Error("expected at least one t to meet the relaxed criterion")
	}
}
