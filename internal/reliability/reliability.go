// Package reliability provides the system-level degradation-window
// machinery of §4.1/§4.3: the fast-degradation criteria a wearout structure
// must meet, per-structure access-count distributions, and the composition
// of N serially-used copies into system-level minimum/maximum usage bounds.
//
// Access convention: "the structure works for access t" has probability
// equal to the structure reliability evaluated at continuous time x = t
// (the convention of Eq 6/Fig 3b). WorksThrough(t) is monotone
// non-increasing in t, so per-structure access counts have the proper PMF
// P(T = t) = WorksThrough(t) − WorksThrough(t+1).
package reliability

import (
	"fmt"
	"math"

	"lemonade/internal/mathx"
	"lemonade/internal/structure"
	"lemonade/internal/weibull"
)

// Criteria is the fast-degradation criterion of §4.3.3: a structure must
// work through its target access count with probability at least MinWork,
// and must survive past its allowed maximum with probability at most
// MaxOverrun.
type Criteria struct {
	// MinWork is the required probability that the structure works for all
	// of its target accesses (paper default 0.99).
	MinWork float64
	// MaxOverrun is the maximum allowed probability that the structure
	// still works one access past its upper bound (paper default 0.01;
	// relaxed to up to 0.10 in Fig 4c).
	MaxOverrun float64
}

// DefaultCriteria is the 99%/1% criterion used for most of the paper's
// experiments.
var DefaultCriteria = Criteria{MinWork: 0.99, MaxOverrun: 0.01}

// Validate reports whether the criteria are proper probabilities.
func (c Criteria) Validate() error {
	if !(c.MinWork > 0 && c.MinWork < 1) {
		return fmt.Errorf("reliability: MinWork must be in (0,1), got %v", c.MinWork)
	}
	if !(c.MaxOverrun > 0 && c.MaxOverrun < 1) {
		return fmt.Errorf("reliability: MaxOverrun must be in (0,1), got %v", c.MaxOverrun)
	}
	if c.MinWork <= c.MaxOverrun {
		return fmt.Errorf("reliability: MinWork (%v) must exceed MaxOverrun (%v)", c.MinWork, c.MaxOverrun)
	}
	return nil
}

// Model is the analytic reliability model of one k-out-of-n parallel
// structure built from i.i.d. devices.
type Model struct {
	Dist weibull.Dist
	N    int // devices in the parallel structure
	K    int // survivors required per access (1 = no encoding)
}

// WorksThrough returns the probability that accesses 1..t all succeed.
func (m Model) WorksThrough(t int) float64 {
	if t <= 0 {
		return 1
	}
	return structure.ParallelReliability(m.Dist, m.N, m.K, float64(t))
}

// MeetsCriteria reports whether the structure works through t accesses and
// degrades before access t+overrunWindow+1 under the criteria. The paper's
// base case uses overrunWindow = 0: reliable at t, dead at t+1.
func (m Model) MeetsCriteria(c Criteria, t, overrunWindow int) bool {
	return m.WorksThrough(t) >= c.MinWork &&
		m.WorksThrough(t+overrunWindow+1) <= c.MaxOverrun
}

// Window returns the degradation window [t1, t2]: the largest access count
// with WorksThrough >= hi, and the smallest with WorksThrough <= lo. The
// window size t2 - t1 is the quantity Fig 3 studies.
func (m Model) Window(hi, lo float64) (t1, t2 int) {
	// WorksThrough is non-increasing in t.
	maxT := int(4*m.Dist.Alpha) + 8
	t1 = mathx.MaxIntSearch(0, maxT, func(t int) bool { return m.WorksThrough(t) >= hi })
	t2 = mathx.MinIntSearch(0, maxT+1, func(t int) bool { return m.WorksThrough(t) <= lo })
	return t1, t2
}

// AccessPMF returns the distribution of the structure's successful access
// count T: pmf[t] = P(T = t) for t = 0..len(pmf)-1, truncated where the
// survival probability drops below 1e-15.
func (m Model) AccessPMF() []float64 {
	var pmf []float64
	prev := 1.0
	for t := 1; ; t++ {
		cur := m.WorksThrough(t)
		pmf = append(pmf, prev-cur)
		prev = cur
		if cur < 1e-15 {
			break
		}
		if t > int(8*m.Dist.Alpha)+64 { // safety: never loop unboundedly
			pmf = append(pmf, cur)
			break
		}
	}
	// pmf[i] currently holds P(T = i+1)? No: first append is P(T=0)=1-W(1).
	return pmf
}

// AccessMoments returns the mean and variance of the structure's successful
// access count.
func (m Model) AccessMoments() (mean, variance float64) {
	pmf := m.AccessPMF()
	var mu, m2 mathx.KahanSum
	for t, p := range pmf {
		mu.Add(p * float64(t))
		m2.Add(p * float64(t) * float64(t))
	}
	mean = mu.Sum()
	variance = m2.Sum() - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// --- System composition ---------------------------------------------------------

// System composes N identical structures used serially (§4.1.1) into
// system-level usage bounds.
type System struct {
	Copy   Model
	Copies int
}

// TotalDevices returns the total NEMS switch count.
func (s System) TotalDevices() int { return s.Copy.N * s.Copies }

// MinUsageProb returns the probability the system delivers at least
// perCopyTarget accesses from every copy, i.e. total >= Copies*perCopyTarget:
// each copy independently works through its target.
func (s System) MinUsageProb(perCopyTarget int) float64 {
	p := s.Copy.WorksThrough(perCopyTarget)
	return math.Exp(float64(s.Copies) * math.Log(p))
}

// ExpectedTotalAccesses returns the expected system-level access count
// (sum of the copies' access counts) and its standard deviation — the
// "empirical access bounds" of Fig 4c.
func (s System) ExpectedTotalAccesses() (mean, sd float64) {
	m, v := s.Copy.AccessMoments()
	return m * float64(s.Copies), math.Sqrt(v * float64(s.Copies))
}

// UpperBoundQuantile returns an approximate q-quantile (e.g. 0.99) of the
// total system access count via the normal approximation — sensible since
// Copies is in the thousands for the connection use case.
func (s System) UpperBoundQuantile(q float64) float64 {
	mean, sd := s.ExpectedTotalAccesses()
	return mean + sd*normQuantile(q)
}

// normQuantile is the standard normal quantile (Acklam's rational
// approximation, |relative error| < 1.15e-9).
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// NormQuantile exposes the standard normal quantile for other packages.
func NormQuantile(p float64) float64 { return normQuantile(p) }
