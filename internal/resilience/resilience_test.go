package resilience

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lemonade/internal/metrics"
	"lemonade/internal/registry"
)

// flakyStore is a registry.Store whose failure is a switch.
type flakyStore struct {
	failing atomic.Bool
	calls   atomic.Int64
}

var errDisk = errors.New("disk on fire")

func (f *flakyStore) append() (func(), error) {
	f.calls.Add(1)
	if f.failing.Load() {
		return nil, errDisk
	}
	return func() {}, nil
}

func (f *flakyStore) AppendProvision(registry.ProvisionRecord) (func(), error) { return f.append() }
func (f *flakyStore) AppendAccess(registry.AccessRecord) (func(), error)       { return f.append() }

// harness builds a breaker over a flaky store with an injected clock.
func harness(t *testing.T, threshold int, cooldown time.Duration) (*Breaker, *flakyStore, *int64, *metrics.Registry) {
	t.Helper()
	var now int64
	st := &flakyStore{}
	m := metrics.NewRegistry()
	b := NewBreaker(BreakerConfig{
		Store:            st,
		FailureThreshold: threshold,
		Cooldown:         cooldown,
		NowNanos:         func() int64 { return atomic.LoadInt64(&now) },
		Metrics:          m,
	})
	return b, st, &now, m
}

func access(b *Breaker) error {
	done, err := b.AppendAccess(registry.AccessRecord{ID: "arch-000001"})
	if err == nil {
		done()
	}
	return err
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	b, st, _, _ := harness(t, 3, time.Second)
	st.failing.Store(true)

	for i := 0; i < 3; i++ {
		if err := access(b); !errors.Is(err, errDisk) {
			t.Fatalf("failure %d: got %v, want store error passed through", i, err)
		}
	}
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}

	// Open: refused without touching the store.
	before := st.calls.Load()
	if err := access(b); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker returned %v, want ErrOpen", err)
	}
	if st.calls.Load() != before {
		t.Fatal("open breaker still touched the store")
	}
	if secs, degraded := b.Degraded(); !degraded || secs < 1 {
		t.Fatalf("Degraded() = (%d, %v), want degraded with Retry-After >= 1", secs, degraded)
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b, st, _, _ := harness(t, 3, time.Second)
	for i := 0; i < 10; i++ {
		st.failing.Store(true)
		_ = access(b)
		_ = access(b) // two failures, below threshold
		st.failing.Store(false)
		if err := access(b); err != nil {
			t.Fatalf("round %d: success after reset failed: %v", i, err)
		}
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("interleaved failures opened the breaker: state %v", got)
	}
}

func TestBreakerHalfOpenProbeRecloses(t *testing.T) {
	b, st, now, _ := harness(t, 2, time.Second)
	st.failing.Store(true)
	_ = access(b)
	_ = access(b)
	if b.State() != StateOpen {
		t.Fatal("breaker did not open")
	}

	// Cooldown elapses: state reads half-open, Degraded lifts, and the
	// next append probes the (healed) store.
	atomic.AddInt64(now, int64(time.Second))
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	if _, degraded := b.Degraded(); degraded {
		t.Fatal("still degraded after cooldown elapsed")
	}
	st.failing.Store(false)
	if err := access(b); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	// Fully healed: a single failure does not re-open.
	st.failing.Store(true)
	_ = access(b)
	if got := b.State(); got != StateClosed {
		t.Fatalf("one failure after heal re-opened: state %v", got)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, st, now, _ := harness(t, 2, time.Second)
	st.failing.Store(true)
	_ = access(b)
	_ = access(b)

	atomic.AddInt64(now, int64(time.Second))
	if err := access(b); !errors.Is(err, errDisk) {
		t.Fatalf("probe error = %v, want store error", err)
	}
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after failed probe = %v, want open (cooldown restarted)", got)
	}
	// The restarted cooldown gates the next probe.
	calls := st.calls.Load()
	if err := access(b); !errors.Is(err, ErrOpen) {
		t.Fatalf("got %v, want ErrOpen during restarted cooldown", err)
	}
	if st.calls.Load() != calls {
		t.Fatal("store touched during restarted cooldown")
	}
}

func TestBreakerGauges(t *testing.T) {
	b, st, now, m := harness(t, 1, time.Second)

	var buf strings.Builder
	mustContain := func(want string) {
		t.Helper()
		buf.Reset()
		if err := m.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, buf.String())
		}
	}

	st.failing.Store(true)
	_ = access(b)
	mustContain("lemonaded_breaker_state 2")
	mustContain("lemonaded_degraded_mode 1")
	mustContain("lemonaded_breaker_opens_total 1")

	atomic.AddInt64(now, int64(time.Second))
	st.failing.Store(false)
	if err := access(b); err != nil {
		t.Fatalf("probe: %v", err)
	}
	mustContain("lemonaded_breaker_state 0")
	mustContain("lemonaded_degraded_mode 0")
}

func TestShedderShedsWhenFull(t *testing.T) {
	m := metrics.NewRegistry()
	s := NewShedder(ShedderConfig{MaxConcurrent: 1, MaxQueue: -1, Metrics: m})

	rel, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Slot held and no queue: the next arrival is shed immediately.
	if _, err := s.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("got %v, want ErrShed", err)
	}
	rel()
	rel2, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	rel2()

	var buf strings.Builder
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lemonaded_shed_total 1") {
		t.Fatalf("shed counter wrong:\n%s", buf.String())
	}
}

func TestShedderQueueHonorsContext(t *testing.T) {
	s := NewShedder(ShedderConfig{MaxConcurrent: 1, MaxQueue: 1})
	rel, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer rel()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire with dead ctx = %v, want context.Canceled", err)
	}
	// The queue slot was returned: a live waiter can still join it.
	select {
	case s.queue <- struct{}{}:
		<-s.queue
	default:
		t.Fatal("queue slot leaked by cancelled waiter")
	}
}
