package resilience

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lemonade/internal/metrics"
	"lemonade/internal/registry"
)

// flakyStore is a registry.Store whose failure is a switch. Failures
// surface at Append (the synchronous path); waitErr instead surfaces
// them at Ticket.Wait, like a failed group commit.
type flakyStore struct {
	failing atomic.Bool
	calls   atomic.Int64
	waitErr atomic.Pointer[error] // non-nil: Append succeeds, Wait fails
}

var errDisk = errors.New("disk on fire")

type flakyTicket struct{ err error }

func (t flakyTicket) Wait() error { return t.err }
func (flakyTicket) Done()         {}

func (f *flakyStore) Append([]registry.Record) (registry.Ticket, error) {
	f.calls.Add(1)
	if f.failing.Load() {
		return nil, errDisk
	}
	if ep := f.waitErr.Load(); ep != nil {
		return flakyTicket{err: *ep}, nil
	}
	return flakyTicket{}, nil
}

// harness builds a breaker over a flaky store with an injected clock.
func harness(t *testing.T, threshold int, cooldown time.Duration) (*Breaker, *flakyStore, *int64, *metrics.Registry) {
	t.Helper()
	var now int64
	st := &flakyStore{}
	m := metrics.NewRegistry()
	b := NewBreaker(BreakerConfig{
		Store:            st,
		FailureThreshold: threshold,
		Cooldown:         cooldown,
		NowNanos:         func() int64 { return atomic.LoadInt64(&now) },
		Metrics:          m,
	})
	return b, st, &now, m
}

func access(b *Breaker) error {
	tkt, err := b.Append([]registry.Record{{Access: &registry.AccessRecord{ID: "arch-000001"}}})
	if err != nil {
		return err
	}
	if err := tkt.Wait(); err != nil {
		return err
	}
	tkt.Done()
	return nil
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	b, st, _, _ := harness(t, 3, time.Second)
	st.failing.Store(true)

	for i := 0; i < 3; i++ {
		if err := access(b); !errors.Is(err, errDisk) {
			t.Fatalf("failure %d: got %v, want store error passed through", i, err)
		}
	}
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}

	// Open: refused without touching the store.
	before := st.calls.Load()
	if err := access(b); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker returned %v, want ErrOpen", err)
	}
	if st.calls.Load() != before {
		t.Fatal("open breaker still touched the store")
	}
	if secs, degraded := b.Degraded(); !degraded || secs < 1 {
		t.Fatalf("Degraded() = (%d, %v), want degraded with Retry-After >= 1", secs, degraded)
	}
}

func TestBreakerSuccessResetsConsecutiveCount(t *testing.T) {
	b, st, _, _ := harness(t, 3, time.Second)
	for i := 0; i < 10; i++ {
		st.failing.Store(true)
		_ = access(b)
		_ = access(b) // two failures, below threshold
		st.failing.Store(false)
		if err := access(b); err != nil {
			t.Fatalf("round %d: success after reset failed: %v", i, err)
		}
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("interleaved failures opened the breaker: state %v", got)
	}
}

func TestBreakerHalfOpenProbeRecloses(t *testing.T) {
	b, st, now, _ := harness(t, 2, time.Second)
	st.failing.Store(true)
	_ = access(b)
	_ = access(b)
	if b.State() != StateOpen {
		t.Fatal("breaker did not open")
	}

	// Cooldown elapses: state reads half-open, Degraded lifts, and the
	// next append probes the (healed) store.
	atomic.AddInt64(now, int64(time.Second))
	if got := b.State(); got != StateHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	if _, degraded := b.Degraded(); degraded {
		t.Fatal("still degraded after cooldown elapsed")
	}
	st.failing.Store(false)
	if err := access(b); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	// Fully healed: a single failure does not re-open.
	st.failing.Store(true)
	_ = access(b)
	if got := b.State(); got != StateClosed {
		t.Fatalf("one failure after heal re-opened: state %v", got)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, st, now, _ := harness(t, 2, time.Second)
	st.failing.Store(true)
	_ = access(b)
	_ = access(b)

	atomic.AddInt64(now, int64(time.Second))
	if err := access(b); !errors.Is(err, errDisk) {
		t.Fatalf("probe error = %v, want store error", err)
	}
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after failed probe = %v, want open (cooldown restarted)", got)
	}
	// The restarted cooldown gates the next probe.
	calls := st.calls.Load()
	if err := access(b); !errors.Is(err, ErrOpen) {
		t.Fatalf("got %v, want ErrOpen during restarted cooldown", err)
	}
	if st.calls.Load() != calls {
		t.Fatal("store touched during restarted cooldown")
	}
}

// groupErr mimics wal.GroupError: every ticket of one failed commit
// group resolves with an error carrying the same group ID.
type groupErr struct{ group uint64 }

func (e *groupErr) Error() string       { return "group commit failed" }
func (e *groupErr) CommitGroup() uint64 { return e.group }

// groupStore hands out tickets that all fail with the configured group.
type groupStore struct{ err atomic.Pointer[error] }

func (g *groupStore) Append([]registry.Record) (registry.Ticket, error) {
	if ep := g.err.Load(); ep != nil {
		return flakyTicket{err: *ep}, nil
	}
	return flakyTicket{}, nil
}

func setGroup(g *groupStore, group uint64) {
	var err error = &groupErr{group: group}
	g.err.Store(&err)
}

// TestBreakerCountsGroupFailureOnce: one sick fsync fails every ticket
// in its commit group with the same group ID; the breaker must count
// that as ONE failure, not one per passenger — otherwise a single bad
// group trips a breaker sized for consecutive independent failures.
func TestBreakerCountsGroupFailureOnce(t *testing.T) {
	st := &groupStore{}
	b := NewBreaker(BreakerConfig{Store: st, FailureThreshold: 3, Cooldown: time.Second,
		NowNanos: func() int64 { return 0 }, Metrics: metrics.NewRegistry()})

	// Ten passengers of commit group 1 all observe the same failure.
	setGroup(st, 1)
	for i := 0; i < 10; i++ {
		tkt, err := b.Append([]registry.Record{{Access: &registry.AccessRecord{ID: "arch-000001"}}})
		if err != nil {
			t.Fatalf("append %d refused: %v", i, err)
		}
		if err := tkt.Wait(); err == nil {
			t.Fatalf("ticket %d did not fail", i)
		}
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("one failed group opened the breaker: state %v", got)
	}

	// Distinct groups are distinct failures: two more reach the threshold.
	for g := uint64(2); g <= 3; g++ {
		setGroup(st, g)
		tkt, err := b.Append([]registry.Record{{Access: &registry.AccessRecord{ID: "arch-000001"}}})
		if err != nil {
			t.Fatalf("append for group %d refused: %v", g, err)
		}
		_ = tkt.Wait()
	}
	if got := b.State(); got != StateOpen {
		t.Fatalf("three distinct failed groups left state %v, want open", got)
	}
}

// TestBreakerInterleavedGroupFailuresCountOnceEach: tickets from two
// failed groups can Wait() in any interleaving (5,6,5,6) — the dedup
// must remember every recently counted group, not just the latest one,
// or each revisit counts as a fresh failure and two sick groups trip a
// breaker sized for three.
func TestBreakerInterleavedGroupFailuresCountOnceEach(t *testing.T) {
	st := &groupStore{}
	b := NewBreaker(BreakerConfig{Store: st, FailureThreshold: 3, Cooldown: time.Second,
		NowNanos: func() int64 { return 0 }, Metrics: metrics.NewRegistry()})

	appendOne := func() registry.Ticket {
		t.Helper()
		tkt, err := b.Append([]registry.Record{{Access: &registry.AccessRecord{ID: "arch-000001"}}})
		if err != nil {
			t.Fatalf("append refused: %v", err)
		}
		return tkt
	}

	// Two tickets per group, collected before any Wait, then observed
	// interleaved: 5, 6, 5, 6.
	setGroup(st, 5)
	t5a, t5b := appendOne(), appendOne()
	setGroup(st, 6)
	t6a, t6b := appendOne(), appendOne()
	for i, tkt := range []registry.Ticket{t5a, t6a, t5b, t6b} {
		if err := tkt.Wait(); err == nil {
			t.Fatalf("interleaved ticket %d did not fail", i)
		}
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("two interleaved failed groups opened the breaker: state %v", got)
	}

	// A third distinct group is the third real failure: now it trips.
	setGroup(st, 7)
	if err := appendOne().Wait(); err == nil {
		t.Fatal("group 7 ticket did not fail")
	}
	if got := b.State(); got != StateOpen {
		t.Fatalf("three distinct failed groups left state %v, want open", got)
	}
}

// TestBreakerWaitFailureCounts: a commit failure surfaced at Wait (not
// at Append) still moves the state machine.
func TestBreakerWaitFailureCounts(t *testing.T) {
	b, st, now, _ := harness(t, 2, time.Second)
	werr := error(errDisk)
	st.waitErr.Store(&werr)
	for i := 0; i < 2; i++ {
		if err := access(b); !errors.Is(err, errDisk) {
			t.Fatalf("wait failure %d: got %v", i, err)
		}
	}
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after wait failures = %v, want open", got)
	}

	// The half-open probe's outcome also arrives via Wait: failure
	// re-opens, then success re-closes.
	atomic.AddInt64(now, int64(time.Second))
	if err := access(b); !errors.Is(err, errDisk) {
		t.Fatalf("probe wait failure: got %v", err)
	}
	if got := b.State(); got != StateOpen {
		t.Fatalf("state after failed probe wait = %v, want open", got)
	}
	atomic.AddInt64(now, int64(time.Second))
	st.waitErr.Store(nil)
	if err := access(b); err != nil {
		t.Fatalf("healed probe: %v", err)
	}
	if got := b.State(); got != StateClosed {
		t.Fatalf("state after healed probe = %v, want closed", got)
	}
}

func TestBreakerGauges(t *testing.T) {
	b, st, now, m := harness(t, 1, time.Second)

	var buf strings.Builder
	mustContain := func(want string) {
		t.Helper()
		buf.Reset()
		if err := m.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, buf.String())
		}
	}

	st.failing.Store(true)
	_ = access(b)
	mustContain("lemonaded_breaker_state 2")
	mustContain("lemonaded_degraded_mode 1")
	mustContain("lemonaded_breaker_opens_total 1")

	atomic.AddInt64(now, int64(time.Second))
	st.failing.Store(false)
	if err := access(b); err != nil {
		t.Fatalf("probe: %v", err)
	}
	mustContain("lemonaded_breaker_state 0")
	mustContain("lemonaded_degraded_mode 0")
}

func TestShedderShedsWhenFull(t *testing.T) {
	m := metrics.NewRegistry()
	s := NewShedder(ShedderConfig{MaxConcurrent: 1, MaxQueue: -1, Metrics: m})

	rel, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Slot held and no queue: the next arrival is shed immediately.
	if _, err := s.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("got %v, want ErrShed", err)
	}
	rel()
	rel2, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	rel2()

	var buf strings.Builder
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lemonaded_shed_total 1") {
		t.Fatalf("shed counter wrong:\n%s", buf.String())
	}
}

func TestShedderQueueHonorsContext(t *testing.T) {
	s := NewShedder(ShedderConfig{MaxConcurrent: 1, MaxQueue: 1})
	rel, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer rel()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire with dead ctx = %v, want context.Canceled", err)
	}
	// The queue slot was returned: a live waiter can still join it.
	select {
	case s.queue <- struct{}{}:
		<-s.queue
	default:
		t.Fatal("queue slot leaked by cancelled waiter")
	}
}
