package resilience

import (
	"context"
	"errors"

	"lemonade/internal/metrics"
)

// ErrShed is returned when the access queue is full: the request never
// ran, so retrying after backoff is always safe.
var ErrShed = errors.New("resilience: access queue full, request shed")

// ShedderConfig parameterizes NewShedder.
type ShedderConfig struct {
	// MaxConcurrent is how many acquisitions may hold slots at once.
	// Default 64.
	MaxConcurrent int
	// MaxQueue bounds how many acquisitions may wait for a slot before
	// new arrivals are shed. 0 means the default (256); negative means
	// no queue at all — when the slots are full, shed immediately.
	MaxQueue int
	// Metrics receives lemonaded_shed_total; nil uses a private registry.
	Metrics *metrics.Registry
}

// Shedder is a bounded-concurrency admission gate for the access path.
// Rather than letting a slow store stack up unbounded goroutines (each
// pinning a connection and a request body), at most MaxConcurrent
// requests run, at most MaxQueue wait, and the rest are shed with a 503
// the moment they arrive — fast failure the client can retry against.
type Shedder struct {
	slots chan struct{}
	queue chan struct{}
	mShed *metrics.Counter
}

// NewShedder builds a Shedder.
func NewShedder(cfg ShedderConfig) *Shedder {
	maxc := cfg.MaxConcurrent
	if maxc <= 0 {
		maxc = 64
	}
	maxq := cfg.MaxQueue
	if maxq == 0 {
		maxq = 256
	}
	if maxq < 0 {
		maxq = 0
	}
	m := cfg.Metrics
	if m == nil {
		m = metrics.NewRegistry()
	}
	return &Shedder{
		slots: make(chan struct{}, maxc),
		queue: make(chan struct{}, maxq),
		mShed: m.Counter("lemonaded_shed_total", "", "access requests shed (queue full or deadline hit while queued)"),
	}
}

// Acquire claims an execution slot, waiting in the bounded queue if none
// is free. It returns a release function that must be called exactly
// once, or an error — ErrShed when the queue is full, or ctx.Err() when
// the caller's deadline expires while queued (also counted as shed: the
// request did no work).
func (s *Shedder) Acquire(ctx context.Context) (release func(), err error) {
	select {
	case s.slots <- struct{}{}:
		return s.release, nil
	default:
	}
	select {
	case s.queue <- struct{}{}:
	default:
		s.mShed.Inc()
		return nil, ErrShed
	}
	defer func() { <-s.queue }()
	select {
	case s.slots <- struct{}{}:
		return s.release, nil
	case <-ctx.Done():
		s.mShed.Inc()
		return nil, ctx.Err()
	}
}

func (s *Shedder) release() { <-s.slots }
