// Package resilience keeps lemonaded serving while its durable store is
// sick. A circuit breaker over registry.Store converts a persistently
// failing store into fast, honest 503s (degraded read-only mode: reads
// keep serving, state changes are refused with Retry-After) and a
// bounded-queue load shedder keeps the access path from collapsing under
// overload. Both obey the determinism contract: the breaker's clock is
// injected, never read from the wall.
package resilience

import (
	"errors"
	"sync"
	"time"

	"lemonade/internal/metrics"
	"lemonade/internal/registry"
)

// State is the circuit breaker's position. The numeric values are the
// wire contract for the lemonaded_breaker_state gauge.
type State int

const (
	StateClosed   State = 0 // store trusted, traffic flows
	StateHalfOpen State = 1 // cooldown elapsed, one probe in flight
	StateOpen     State = 2 // store bypassed, state changes refused
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	}
	return "unknown"
}

// ErrOpen is returned for appends refused because the breaker is open.
// The server maps it to 503 + Retry-After; no wearout is consumed and no
// key bytes are revealed — the same fail-closed direction as a real
// store failure, minus the latency of touching a dead disk.
var ErrOpen = errors.New("resilience: circuit breaker open, durable store bypassed")

// BreakerConfig parameterizes NewBreaker.
type BreakerConfig struct {
	// Store is the wrapped registry.Store (required).
	Store registry.Store
	// FailureThreshold is how many consecutive append failures open the
	// breaker. Default 5.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe. Default 5s.
	Cooldown time.Duration
	// NowNanos supplies the clock (determinism contract: the package
	// never reads the wall clock). Nil pins time at zero, so an opened
	// breaker never re-probes — always inject a real clock in the daemon.
	NowNanos func() int64
	// Metrics receives lemonaded_breaker_state / lemonaded_degraded_mode
	// / lemonaded_breaker_opens_total; nil uses a private registry.
	Metrics *metrics.Registry
}

// Breaker is a circuit breaker implementing registry.Store. Closed, it
// forwards appends and counts consecutive failures; at the threshold it
// opens and refuses appends with ErrOpen until Cooldown elapses; then a
// single half-open probe is let through — success re-closes, failure
// re-opens. Safe for concurrent use.
type Breaker struct {
	inner     registry.Store
	threshold int
	cooldown  int64
	now       func() int64

	mu       sync.Mutex
	state    State // guarded by mu
	fails    int   // guarded by mu; consecutive failures while closed
	openedAt int64 // guarded by mu
	probing  bool  // guarded by mu
	// failedGroups is a ring of recently counted failed commit-group IDs.
	// A ring, not a single "last seen" value: tickets of different failed
	// groups Wait() in arbitrary interleavings (5,6,5,6…), and each
	// revisit of a group already counted must stay a duplicate.
	failedGroups    [failedGroupMemory]uint64 // guarded by mu
	nFailedGroups   int                       // guarded by mu; entries in use
	failedGroupsPos int                       // guarded by mu; next slot to overwrite

	gState    *metrics.Gauge
	gDegraded *metrics.Gauge
	mOpens    *metrics.Counter
}

// NewBreaker wraps cfg.Store in a circuit breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	threshold := cfg.FailureThreshold
	if threshold <= 0 {
		threshold = 5
	}
	cooldown := cfg.Cooldown
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	now := cfg.NowNanos
	if now == nil {
		now = func() int64 { return 0 }
	}
	m := cfg.Metrics
	if m == nil {
		m = metrics.NewRegistry()
	}
	return &Breaker{
		inner:     cfg.Store,
		threshold: threshold,
		cooldown:  int64(cooldown),
		now:       now,
		gState:    m.Gauge("lemonaded_breaker_state", "", "circuit breaker position (0=closed, 1=half-open, 2=open)"),
		gDegraded: m.Gauge("lemonaded_degraded_mode", "", "1 while the daemon is degraded read-only (breaker open)"),
		mOpens:    m.Counter("lemonaded_breaker_opens_total", "", "times the circuit breaker opened"),
	}
}

// Append implements registry.Store. A synchronous enqueue failure
// settles the state machine immediately; otherwise the outcome is only
// known at Ticket.Wait, so the returned ticket settles it there. With
// group commit one sick fsync fails a whole batch of tickets carrying
// the same commit-group ID — the breaker counts that as ONE failure, not
// one per passenger, so a single bad group can't trip a breaker sized
// for consecutive independent failures.
func (b *Breaker) Append(recs []registry.Record) (registry.Ticket, error) {
	probe, err := b.admit()
	if err != nil {
		return nil, err
	}
	tkt, err := b.inner.Append(recs)
	if err != nil {
		b.settle(probe, err)
		return nil, err
	}
	return &breakerTicket{b: b, inner: tkt, probe: probe}, nil
}

// breakerTicket settles the breaker with the commit outcome the first
// time Wait returns.
type breakerTicket struct {
	b     *Breaker
	inner registry.Ticket
	probe bool
	once  sync.Once
	err   error
}

func (t *breakerTicket) Wait() error {
	t.once.Do(func() {
		t.err = t.inner.Wait()
		t.b.settleGroup(t.probe, t.err)
	})
	return t.err
}

func (t *breakerTicket) Done() { t.inner.Done() }

// admit decides whether an append may reach the store. It returns probe
// = true when this call is the half-open probe; exactly one is in flight
// at a time.
func (b *Breaker) admit() (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen {
		if b.now()-b.openedAt < b.cooldown {
			return false, ErrOpen
		}
		b.setState(StateHalfOpen)
	}
	if b.state == StateHalfOpen {
		if b.probing {
			return false, ErrOpen
		}
		b.probing = true
		return true, nil
	}
	return false, nil
}

// settle records the append's outcome and moves the state machine.
func (b *Breaker) settle(probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.settleLocked(probe, err, false)
}

// settleGroup is settle for commit outcomes delivered via Ticket.Wait:
// when the error carries a commit-group ID (wal.GroupError), repeats of
// the same group collapse into one failure.
func (b *Breaker) settleGroup(probe bool, err error) {
	var g interface{ CommitGroup() uint64 }
	if err != nil && errors.As(err, &g) {
		b.mu.Lock()
		b.settleLocked(probe, err, b.seenFailedGroup(g.CommitGroup()))
		b.mu.Unlock()
		return
	}
	b.settle(probe, err)
}

// failedGroupMemory bounds the dedup ring. Commit groups fail in ID
// order and a ticket's Wait returns promptly after its group settles, so
// the set of groups with tickets still unobserved at any instant is
// small; 16 comfortably covers the deepest realistic interleaving while
// keeping the scan trivial.
const failedGroupMemory = 16

// seenFailedGroup reports whether gid's failure was already counted,
// recording it as counted if not. Caller holds b.mu.
func (b *Breaker) seenFailedGroup(gid uint64) bool {
	for i := 0; i < b.nFailedGroups; i++ {
		if b.failedGroups[i] == gid {
			return true
		}
	}
	b.failedGroups[b.failedGroupsPos] = gid
	b.failedGroupsPos = (b.failedGroupsPos + 1) % failedGroupMemory
	if b.nFailedGroups < failedGroupMemory {
		b.nFailedGroups++
	}
	return false
}

// settleLocked moves the state machine; caller holds b.mu. dupGroup
// marks a failure already counted for an earlier ticket of the same
// commit group: it still ends a probe (and re-opens on probe failure,
// since the probe demonstrably hit a sick store) but does not advance
// the consecutive-failure count.
func (b *Breaker) settleLocked(probe bool, err error, dupGroup bool) {
	if probe {
		b.probing = false
	}
	if err == nil {
		b.fails = 0
		b.nFailedGroups, b.failedGroupsPos = 0, 0
		if b.state != StateClosed {
			b.setState(StateClosed)
		}
		return
	}
	switch b.state {
	case StateHalfOpen:
		// The probe hit a still-sick store: back to open, restart cooldown.
		b.trip()
	case StateClosed:
		if dupGroup {
			return
		}
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	}
}

// trip opens the breaker; caller holds b.mu.
func (b *Breaker) trip() {
	b.setState(StateOpen)
	b.openedAt = b.now()
	b.fails = 0
	b.mOpens.Inc()
}

// setState moves the machine and keeps the gauges truthful; caller holds
// b.mu.
func (b *Breaker) setState(s State) {
	b.state = s
	b.gState.Set(int64(s))
	if s == StateOpen {
		b.gDegraded.Set(1)
	} else {
		b.gDegraded.Set(0)
	}
}

// State reports the effective position: an open breaker whose cooldown
// has elapsed reads as half-open (the next append will be the probe).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen && b.now()-b.openedAt >= b.cooldown {
		return StateHalfOpen
	}
	return b.state
}

// Degraded reports whether state-changing requests should be refused
// without touching the store, and how many whole seconds a client should
// wait before retrying (≥ 1 while degraded). Once the cooldown elapses
// it reports false so the next request becomes the half-open probe.
func (b *Breaker) Degraded() (retryAfterSeconds int, degraded bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != StateOpen {
		return 0, false
	}
	remaining := b.cooldown - (b.now() - b.openedAt)
	if remaining <= 0 {
		return 0, false
	}
	secs := int((remaining + int64(time.Second) - 1) / int64(time.Second))
	if secs < 1 {
		secs = 1
	}
	return secs, true
}
