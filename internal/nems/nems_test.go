package nems

import (
	"errors"
	"math"
	"testing"

	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

func TestDeterministicSwitchLifetime(t *testing.T) {
	s := FabricateDeterministic(3)
	for i := 0; i < 3; i++ {
		if err := s.Actuate(RoomTemp); err != nil {
			t.Fatalf("actuation %d failed early: %v", i+1, err)
		}
	}
	if err := s.Actuate(RoomTemp); !errors.Is(err, ErrFailed) {
		t.Errorf("4th actuation of 3-cycle switch should fail, got %v", err)
	}
	if s.Working() {
		t.Error("switch should report failed")
	}
	if s.FailedAt() != 4 {
		t.Errorf("FailedAt = %d, want 4", s.FailedAt())
	}
	if s.Actuations() != 4 {
		t.Errorf("Actuations = %d, want 4", s.Actuations())
	}
}

func TestFailedSwitchStaysFailed(t *testing.T) {
	s := FabricateDeterministic(1)
	_ = s.Actuate(RoomTemp)
	_ = s.Actuate(RoomTemp)
	count := s.Actuations()
	if err := s.Actuate(RoomTemp); !errors.Is(err, ErrFailed) {
		t.Error("failed switch should keep returning ErrFailed")
	}
	if s.Actuations() != count {
		t.Error("actuating a failed switch should not advance the counter")
	}
}

func TestZeroLifetimeFailsImmediately(t *testing.T) {
	s := FabricateDeterministic(0)
	if err := s.Actuate(RoomTemp); !errors.Is(err, ErrFailed) {
		t.Error("an infant-mortality switch must fail on its first actuation")
	}
}

func TestOneTimeSwitch(t *testing.T) {
	// The forward-secrecy primitive: works exactly once.
	s := FabricateDeterministic(1)
	if err := s.Actuate(RoomTemp); err != nil {
		t.Fatal("one-time switch must conduct its single access")
	}
	if err := s.Actuate(RoomTemp); !errors.Is(err, ErrFailed) {
		t.Error("one-time switch must fail on the second access")
	}
}

func TestLifetimeMatchesWeibull(t *testing.T) {
	// Empirical mean failure cycle of fabricated switches should track the
	// distribution mean.
	d := weibull.MustNew(20, 8)
	r := rng.New(11)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		s := Fabricate(d, r)
		for s.Actuate(RoomTemp) == nil {
		}
		sum += float64(s.FailedAt())
	}
	mean := sum / n
	// FailedAt is ceil(lifetime)+1-ish; allow a ±1.5 cycle band around Mean.
	if math.Abs(mean-d.Mean()) > 1.5 {
		t.Errorf("empirical mean failure cycle %g vs distribution mean %g", mean, d.Mean())
	}
}

func TestHighTemperatureAcceleratesWearout(t *testing.T) {
	d := weibull.MustNew(100, 8)
	rHot, rCold := rng.New(5), rng.New(5) // identical lifetimes
	hot := Environment{TempCelsius: 500}
	var hotSum, roomSum float64
	const n = 2000
	for i := 0; i < n; i++ {
		sh := Fabricate(d, rHot)
		sr := Fabricate(d, rCold)
		for sh.Actuate(hot) == nil {
		}
		for sr.Actuate(RoomTemp) == nil {
		}
		hotSum += float64(sh.FailedAt())
		roomSum += float64(sr.FailedAt())
	}
	if hotSum >= roomSum {
		t.Errorf("500°C should shorten lifetimes: hot mean %g vs room mean %g", hotSum/n, roomSum/n)
	}
	// The key security property: no environment extends lifetime.
	if hotSum/n > roomSum/n {
		t.Error("environment extended device lifetime — security violation")
	}
}

func TestFreezingDoesNotExtendLifetime(t *testing.T) {
	d := weibull.MustNew(50, 8)
	r1, r2 := rng.New(9), rng.New(9)
	frozen := Environment{TempCelsius: -80}
	var frozenSum, roomSum float64
	const n = 1000
	for i := 0; i < n; i++ {
		sf := Fabricate(d, r1)
		sr := Fabricate(d, r2)
		for sf.Actuate(frozen) == nil {
		}
		for sr.Actuate(RoomTemp) == nil {
		}
		frozenSum += float64(sf.FailedAt())
		roomSum += float64(sr.FailedAt())
	}
	if frozenSum > roomSum {
		t.Error("freezing extended lifetime — paper says fracture prevents this")
	}
}

func TestEnvironmentAccelerationFactors(t *testing.T) {
	cases := []struct {
		temp float64
		want float64
	}{
		{25, 1}, {100, 1}, {200, 2}, {500, 10}, {-80, 2}, {0, 1},
	}
	for _, c := range cases {
		if got := (Environment{TempCelsius: c.temp}).wearoutAcceleration(); got != c.want {
			t.Errorf("acceleration at %g°C = %g, want %g", c.temp, got, c.want)
		}
	}
}

func TestPopulationFabricateN(t *testing.T) {
	p := NewPopulation(weibull.MustNew(10, 8), 0.1, 0.05, rng.New(3))
	switches := p.FabricateN(50)
	if len(switches) != 50 || p.Produced() != 50 {
		t.Errorf("FabricateN bookkeeping wrong: %d produced", p.Produced())
	}
	for _, s := range switches {
		if !s.Working() {
			t.Error("fresh switch should be working")
		}
	}
}

func TestMeasureLifetimesAndRefit(t *testing.T) {
	// End-to-end characterization: fabricate, cycle to failure, refit the
	// Weibull parameters — they must come back near nominal.
	nominal := weibull.MustNew(15, 6)
	p := NewPopulation(nominal, 0, 0, rng.New(21))
	obs := p.MeasureLifetimes(5000, 1000)
	fit, err := weibull.Fit(obs)
	if err != nil {
		t.Fatal(err)
	}
	// SampleCycles ceils the continuous draw and failure is recorded on the
	// first actuation *past* the lifetime, so the refit alpha sits ~1.5
	// cycles above nominal.
	if fit.Alpha < nominal.Alpha || fit.Alpha > nominal.Alpha+2.5 {
		t.Errorf("refit alpha %g, want within [%g, %g]", fit.Alpha, nominal.Alpha, nominal.Alpha+2.5)
	}
	// Discretization to whole cycles blurs beta somewhat.
	if fit.Beta < 4.5 || fit.Beta > 8.5 {
		t.Errorf("refit beta %g, want ~6", fit.Beta)
	}
}

func TestMeasureLifetimesCensoring(t *testing.T) {
	p := NewPopulation(weibull.MustNew(100, 4), 0, 0, rng.New(2))
	obs := p.MeasureLifetimes(200, 50) // cutoff well below mean
	censored := 0
	for _, o := range obs {
		if o.Censored {
			censored++
			if o.Time != 50 {
				t.Error("censored observation should carry the cutoff time")
			}
		}
	}
	if censored == 0 {
		t.Error("expected some censored observations with cutoff << mean")
	}
}

func TestProcessVariationWidensSpread(t *testing.T) {
	d := weibull.MustNew(50, 12)
	rTight, rWide := rng.New(31), rng.New(31)
	tight := NewPopulation(d, 0, 0, rTight)
	wide := NewPopulation(d, 0.4, 0.3, rWide)
	variance := func(p *Population) float64 {
		const n = 4000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			s := p.Fabricate()
			for s.Actuate(RoomTemp) == nil {
			}
			v := float64(s.FailedAt())
			sum += v
			sumSq += v * v
		}
		m := sum / n
		return sumSq/n - m*m
	}
	vt, vw := variance(tight), variance(wide)
	if vw <= vt {
		t.Errorf("process variation should widen lifetime spread: tight %g, wide %g", vt, vw)
	}
}

func TestStringDoesNotLeakLifetime(t *testing.T) {
	s := FabricateDeterministic(12345)
	if str := s.String(); str == "" {
		t.Error("empty String")
	}
	// the hidden lifetime must not be printed
	if containsDigits := func(str, sub string) bool {
		for i := 0; i+len(sub) <= len(str); i++ {
			if str[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	}; containsDigits(s.String(), "12345") {
		t.Error("String() leaks the hidden lifetime")
	}
}
