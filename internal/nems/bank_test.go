package nems

import (
	"math"
	"testing"
)

// TestWearoutAccelerationBoundaries pins the acceleration factor at the
// exact specification corners: −40 °C and 150 °C are inclusive thresholds
// (the spec says "at or beyond"), 400 °C switches to the melting regime,
// and every just-inside temperature stays at the nominal 1×.
func TestWearoutAccelerationBoundaries(t *testing.T) {
	cases := []struct {
		temp float64
		want float64
	}{
		{-40, 2},                    // exactly the freezing threshold: accelerated
		{math.Nextafter(-40, 0), 1}, // just above freezing threshold: nominal
		{-39.999, 1},                // comfortably above: nominal
		{-273.15, 2},                // absolute zero still only fractures
		{25, 1},                     // room temperature
		{math.Nextafter(150, 0), 1}, // just below the hot threshold: nominal
		{149.999, 1},                // comfortably below: nominal
		{150, 2},                    // exactly the hot threshold: accelerated
		{math.Nextafter(400, 0), 2}, // just below melting: still the 2× regime
		{399.999, 2},                // comfortably below melting: 2×
		{400, 10},                   // exactly the melting threshold: 10×
		{500, 10},                   // the paper's cited SiC melting point
		{math.Inf(1), 10},           // no temperature exceeds the melting regime
	}
	for _, tc := range cases {
		if got := (Environment{TempCelsius: tc.temp}).wearoutAcceleration(); got != tc.want {
			t.Errorf("wearoutAcceleration(%v °C) = %v, want %v", tc.temp, got, tc.want)
		}
	}
}

// TestWearoutAccelerationNeverBelowOne sweeps the temperature axis and
// pins the security-critical direction of §2.1: no environment ever slows
// wearout, so an attacker cannot stretch the usage bound by refrigeration
// or any other environmental control.
func TestWearoutAccelerationNeverBelowOne(t *testing.T) {
	for temp := -300.0; temp <= 600.0; temp += 0.25 {
		if got := (Environment{TempCelsius: temp}).wearoutAcceleration(); got < 1 {
			t.Fatalf("wearoutAcceleration(%v °C) = %v < 1: environment extended device life", temp, got)
		}
	}
	for _, temp := range []float64{math.Inf(-1), math.Inf(1)} {
		if got := (Environment{TempCelsius: temp}).wearoutAcceleration(); got < 1 {
			t.Fatalf("wearoutAcceleration(%v) = %v < 1", temp, got)
		}
	}
}

// deterministicBank builds a bank of deterministic-lifetime switches:
// n logical slots, spares extra physicals, each with the given lifetime.
func deterministicBank(t *testing.T, n, spares int, lifetime uint64) *Bank {
	t.Helper()
	phys := make([]*Switch, n+spares)
	for i := range phys {
		phys[i] = FabricateDeterministic(lifetime)
	}
	b, err := NewBank(phys, n)
	if err != nil {
		t.Fatalf("NewBank: %v", err)
	}
	return b
}

func TestBankIdentityAssignment(t *testing.T) {
	b := deterministicBank(t, 3, 2, 10)
	want := []int{0, 1, 2}
	for i, p := range b.Assign() {
		if p != want[i] {
			t.Fatalf("initial assign = %v, want identity %v", b.Assign(), want)
		}
	}
	if got := b.SparesRemaining(); got != 2 {
		t.Fatalf("SparesRemaining = %d, want 2", got)
	}
	if got, want := b.Slots(), 3; got != want {
		t.Fatalf("Slots = %d, want %d", got, want)
	}
	if got, want := b.Physical(), 5; got != want {
		t.Fatalf("Physical = %d, want %d", got, want)
	}
}

func TestBankSetAssignValidation(t *testing.T) {
	b := deterministicBank(t, 3, 1, 10)
	for _, bad := range [][]int{
		{0, 1},       // wrong width
		{0, 1, 2, 3}, // wrong width
		{0, 1, 4},    // out of range
		{0, 1, -1},   // negative
		{0, 1, 1},    // duplicate
	} {
		if err := b.SetAssign(bad); err == nil {
			t.Errorf("SetAssign(%v) accepted an invalid table", bad)
		}
	}
	if err := b.SetAssign([]int{3, 1, 2}); err != nil {
		t.Fatalf("SetAssign(valid): %v", err)
	}
	if got := b.Assign(); got[0] != 3 {
		t.Fatalf("assign after SetAssign = %v, want slot 0 → 3", got)
	}
	// A dead target is legal (replay must reinstall any recorded table).
	dead := deterministicBank(t, 2, 1, 0)
	_ = dead.Actuate(0, RoomTemp) // kills phys 0 (lifetime 0)
	if err := dead.SetAssign([]int{0, 1}); err != nil {
		t.Fatalf("SetAssign onto a dead switch must be legal for replay: %v", err)
	}
}

func TestBankPlanRemapRotatesOntoLeastWorn(t *testing.T) {
	b := deterministicBank(t, 2, 2, 100)
	// Age slot 0 hard (10 cycles) and slot 1 lightly (2 cycles); the two
	// spares are fresh. The plan must move service onto the fresh spares.
	for i := 0; i < 10; i++ {
		if err := b.Actuate(0, RoomTemp); err != nil {
			t.Fatalf("actuate: %v", err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := b.Actuate(1, RoomTemp); err != nil {
			t.Fatalf("actuate: %v", err)
		}
	}
	assign, retire := b.PlanRemap()
	if len(retire) != 0 {
		t.Fatalf("nothing has failed, retire = %v", retire)
	}
	if assign[0] != 2 || assign[1] != 3 {
		t.Fatalf("plan = %v, want fresh spares [2 3]", assign)
	}
	if err := b.SetAssign(assign); err != nil {
		t.Fatalf("SetAssign(plan): %v", err)
	}
	if got := b.WearSkew(); got != 10 {
		t.Fatalf("WearSkew = %v, want 10 (max 10, min 0)", got)
	}
}

func TestBankRetireSwapsSpareUnderSlot(t *testing.T) {
	b := deterministicBank(t, 2, 1, 1)
	// Kill slot 0's switch: one successful actuation then failure.
	_ = b.Actuate(0, RoomTemp)
	_ = b.Actuate(0, RoomTemp)
	if b.SlotWorking(0) {
		t.Fatal("slot 0 should be dead")
	}
	assign, retire := b.PlanRemap()
	if len(retire) != 1 || retire[0] != 0 {
		t.Fatalf("retire = %v, want [0]", retire)
	}
	if err := b.Retire(retire[0]); err != nil {
		t.Fatalf("Retire: %v", err)
	}
	if err := b.SetAssign(assign); err != nil {
		t.Fatalf("SetAssign: %v", err)
	}
	// The spare (phys 2) must now serve a slot; the dead switch is out.
	for _, p := range b.Assign() {
		if p == 0 {
			t.Fatalf("retired switch still in service: assign = %v", b.Assign())
		}
	}
	if !b.SlotWorking(0) || !b.SlotWorking(1) {
		t.Fatalf("slots should be working after rotation: %v", b.Assign())
	}
	if got := b.SparesRemaining(); got != 0 {
		t.Fatalf("SparesRemaining = %d, want 0 after the spare entered service", got)
	}
	if !b.Retired(0) {
		t.Fatal("Retired(0) = false after Retire(0)")
	}
	// Retire is idempotent (WAL replay may apply a record twice across
	// recover-restart cycles).
	if err := b.Retire(0); err != nil {
		t.Fatalf("second Retire: %v", err)
	}
}

func TestBankPlanPadsWhenPoolExhausted(t *testing.T) {
	b := deterministicBank(t, 2, 0, 0)
	// Lifetime 0: first actuation kills each switch.
	_ = b.Actuate(0, RoomTemp)
	_ = b.Actuate(1, RoomTemp)
	assign, retire := b.PlanRemap()
	if len(retire) != 2 {
		t.Fatalf("retire = %v, want both switches", retire)
	}
	if len(assign) != 2 {
		t.Fatalf("plan must still fill every slot, got %v", assign)
	}
	if err := b.SetAssign(assign); err != nil {
		t.Fatalf("SetAssign(padded plan): %v", err)
	}
	if got := b.SparesRemaining(); got != 0 {
		t.Fatalf("SparesRemaining = %d on an exhausted pool", got)
	}
}

func TestWearSkewOfUnleveled(t *testing.T) {
	a, bsw := FabricateDeterministic(100), FabricateDeterministic(100)
	for i := 0; i < 7; i++ {
		_ = a.Actuate(RoomTemp)
	}
	if got := WearSkewOf([]*Switch{a, bsw}); got != 7 {
		t.Fatalf("WearSkewOf = %v, want 7", got)
	}
	if got := WearSkewOf(nil); got != 0 {
		t.Fatalf("WearSkewOf(nil) = %v, want 0", got)
	}
}
