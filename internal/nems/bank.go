package nems

import (
	"errors"
	"fmt"
	"sort"
)

// Bank is a wear-leveled pool of NEMS switches: n logical slots served by
// len(phys) physical switches (primaries plus spares) through a
// WoLFRaM-style programmable remap table (arXiv:2010.02825). Each logical
// slot guards one component share; the remap table decides which physical
// switch fires when that slot is actuated. Rotating the table onto the
// least-worn physical switches levels an adversary's targeted stress
// pattern (arXiv:2508.16868) across the whole pool, and retiring a worn
// switch swaps a spare under the same logical share.
//
// A Bank has no locking of its own: it is always owned by exactly one
// core.Architecture copy and mutated under that architecture's lock,
// exactly like the raw switch slice it replaces.
type Bank struct {
	phys    []*Switch
	n       int    // logical width (shares)
	assign  []int  // logical slot i fires phys[assign[i]]
	retired []bool // physical; sticky — a retired switch never re-enters service
}

// NewBank builds a bank of n logical slots over phys (primaries first,
// spares after). The initial mapping is the identity: logical i fires
// phys[i].
func NewBank(phys []*Switch, n int) (*Bank, error) {
	if n < 1 {
		return nil, fmt.Errorf("nems: bank needs at least 1 logical slot, got %d", n)
	}
	if len(phys) < n {
		return nil, fmt.Errorf("nems: bank has %d physical switches for %d logical slots", len(phys), n)
	}
	b := &Bank{phys: phys, n: n, assign: make([]int, n), retired: make([]bool, len(phys))}
	for i := range b.assign {
		b.assign[i] = i
	}
	return b, nil
}

// Actuate fires the physical switch currently mapped under logical slot i.
func (b *Bank) Actuate(logical int, env Environment) error {
	return b.phys[b.assign[logical]].Actuate(env)
}

// SlotWorking reports whether logical slot i's mapped switch can conduct.
func (b *Bank) SlotWorking(logical int) bool {
	return b.phys[b.assign[logical]].Working()
}

// Slots returns the logical width of the bank.
func (b *Bank) Slots() int { return b.n }

// Physical returns the size of the physical pool (primaries + spares).
func (b *Bank) Physical() int { return len(b.phys) }

// Assign returns a copy of the current remap table.
func (b *Bank) Assign() []int {
	out := make([]int, len(b.assign))
	copy(out, b.assign)
	return out
}

// errAssign is the uniform rejection for remap tables that cannot be
// installed; callers (WAL replay) surface it as corruption.
var errAssign = errors.New("nems: invalid remap assignment")

// SetAssign installs a remap table verbatim: len(assign) must equal the
// logical width and the entries must be distinct in-range physical
// indices. Deliberately NOT validated: whether the targets are working or
// retired — replay must be able to reinstall any table that was ever
// durably recorded, and mapping a dead switch is harmless (the slot just
// stops conducting until the next rotation).
func (b *Bank) SetAssign(assign []int) error {
	if len(assign) != b.n {
		return fmt.Errorf("%w: %d entries for %d slots", errAssign, len(assign), b.n)
	}
	seen := make(map[int]bool, len(assign))
	for _, p := range assign {
		if p < 0 || p >= len(b.phys) {
			return fmt.Errorf("%w: physical index %d out of range [0, %d)", errAssign, p, len(b.phys))
		}
		if seen[p] {
			return fmt.Errorf("%w: physical index %d assigned twice", errAssign, p)
		}
		seen[p] = true
	}
	copy(b.assign, assign)
	return nil
}

// Retire permanently removes a physical switch from service: it is
// excluded from future remap plans, from the spare count, and from the
// wear-skew statistic. Retiring an already-retired switch is a no-op,
// which keeps WAL replay idempotent.
func (b *Bank) Retire(physical int) error {
	if physical < 0 || physical >= len(b.phys) {
		return fmt.Errorf("nems: retire: physical index %d out of range [0, %d)", physical, len(b.phys))
	}
	b.retired[physical] = true
	return nil
}

// Retired reports whether physical switch p has been retired.
func (b *Bank) Retired(physical int) bool { return b.retired[physical] }

// usable reports whether physical switch p can serve a logical slot.
func (b *Bank) usable(p int) bool { return !b.retired[p] && b.phys[p].Working() }

// Usable counts physical switches that could serve a logical slot after a
// rotation: working and not retired, whether or not currently assigned.
// This is the bank's service potential — a copy is recoverable as long as
// Usable() meets the survivor threshold, even if the current mapping has
// dead switches under some slots.
func (b *Bank) Usable() int {
	n := 0
	for p := range b.phys {
		if b.usable(p) {
			n++
		}
	}
	return n
}

// PlanRemap computes the deterministic WoLFRaM rotation for the current
// wear state:
//
//   - RetireList: assigned switches that have worn out and are not yet
//     retired — they leave service for good.
//   - Assign: the n least-worn usable switches, ranked by (accumulated
//     wear, physical index) and installed in physical-index order. When
//     fewer than n usable switches remain the plan pads with the retired
//     and worn (lowest index first): those slots simply never conduct,
//     exactly like a worn-out unleveled structure.
//
// The plan is a pure function of observable wear state (actuation counts
// weighted by the per-request environment the controller itself served),
// so equal histories produce equal plans — the property the durable remap
// log and the bit-identical replay contract lean on.
func (b *Bank) PlanRemap() (assign, retire []int) {
	for _, p := range b.assign {
		if !b.retired[p] && !b.phys[p].Working() {
			retire = append(retire, p)
		}
	}
	sort.Ints(retire)
	justRetired := make(map[int]bool, len(retire))
	for _, p := range retire {
		justRetired[p] = true
	}
	var usable, dead []int
	for p := range b.phys {
		if b.usable(p) && !justRetired[p] {
			usable = append(usable, p)
		} else {
			dead = append(dead, p)
		}
	}
	sort.Slice(usable, func(i, j int) bool {
		wi, wj := b.phys[usable[i]].Wear(), b.phys[usable[j]].Wear()
		if wi < wj {
			return true
		}
		if wj < wi {
			return false
		}
		return usable[i] < usable[j]
	})
	if len(usable) > b.n {
		usable = usable[:b.n]
	}
	assign = usable
	for len(assign) < b.n {
		assign = append(assign, dead[0])
		dead = dead[1:]
	}
	sort.Ints(assign)
	return assign, retire
}

// WearSkew is the spread of accumulated wear across the serviceable pool:
// max − min wear over non-retired physical switches. A targeted stress
// attack drives it up on an unleveled structure (the victim switches age,
// the rest do not); rotation pulls it back down. Zero when fewer than two
// serviceable switches remain.
func (b *Bank) WearSkew() float64 {
	return wearSkew(b.phys, b.retired)
}

// wearSkew computes max−min wear over switches not excluded; excluded may
// be nil (nothing excluded). Shared with the unleveled architecture so
// both variants report the same statistic.
func wearSkew(switches []*Switch, excluded []bool) float64 {
	first := true
	var lo, hi float64
	for p, sw := range switches {
		if excluded != nil && excluded[p] {
			continue
		}
		w := sw.Wear()
		if first {
			lo, hi = w, w
			first = false
			continue
		}
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	if first {
		return 0
	}
	return hi - lo
}

// WearSkewOf reports max−min accumulated wear across a plain switch
// slice — the unleveled architecture's side of the skew gauge.
func WearSkewOf(switches []*Switch) float64 { return wearSkew(switches, nil) }

// SparesRemaining counts usable physical switches not currently mapped
// under any logical slot — the remaining headroom before the bank
// degrades like an unleveled structure.
func (b *Bank) SparesRemaining() int {
	inService := make([]bool, len(b.phys))
	for _, p := range b.assign {
		inService[p] = true
	}
	n := 0
	for p := range b.phys {
		if !inService[p] && b.usable(p) {
			n++
		}
	}
	return n
}
