// Package nems simulates NEMS (nanoelectromechanical) contact switches —
// the wearout devices of §2.1 of the paper — as stochastic state machines.
//
// A Switch is fabricated with a hidden lifetime drawn from a Weibull
// distribution (optionally perturbed by per-device process variation) and
// fails permanently once actuated that many times. The simulator also
// models the environmental insensitivity the paper relies on for security:
// operating temperature can accelerate wearout (melting at 500 °C for SiC)
// but can never extend a device's lifetime, and freezing leads to fracture
// rather than slower aging.
//
// Physical constants (actuation latency, switching energy, contact area)
// follow Loh & Espinosa (Nature Nanotech 2012), the source the paper cites:
// ~10 ns per actuation, ~1e-20 J per operation, ~100 nm² contact area.
package nems

import (
	"errors"
	"fmt"

	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

// Physical constants used by the cost and latency models (paper §4.3, §6.5).
const (
	// ActuationLatencySeconds is the switching time of one NEMS contact
	// switch (~10 ns).
	ActuationLatencySeconds = 10e-9
	// ActuationEnergyJoules is the energy of one switching operation
	// (~1e-20 J).
	ActuationEnergyJoules = 1e-20
	// ContactAreaNm2 is the contact area of one switch in nm².
	ContactAreaNm2 = 100.0
	// PitchNm is the assumed distance between switches in a layout, nm.
	PitchNm = 1.0
)

// Environment describes operating conditions for an actuation. The paper's
// security argument (§2.1) is that NEMS wearout is insensitive to the
// environment in the attacker-favourable direction: heat and cold can only
// destroy devices faster.
type Environment struct {
	// TempCelsius is the operating temperature. Devices are specified at
	// 25 °C; extreme temperatures apply a wearout *acceleration* factor,
	// never a deceleration.
	TempCelsius float64
}

// RoomTemp is the nominal specification environment.
var RoomTemp = Environment{TempCelsius: 25}

// wearoutAcceleration returns the multiplicative factor applied to wear per
// actuation. Always >= 1: the paper's devices cannot be life-extended by
// environmental control.
func (e Environment) wearoutAcceleration() float64 {
	switch {
	case e.TempCelsius >= 400:
		// SiC switches suffer melting-type failures at 500 °C; the paper
		// cites ~10x fewer cycles (21e9 at 25 °C vs 2e9 at 500 °C).
		return 10
	case e.TempCelsius >= 150:
		return 2
	case e.TempCelsius <= -40:
		// Freezing causes fracture; model as mildly accelerated wear.
		return 2
	default:
		return 1
	}
}

// ErrFailed is returned by Actuate on a switch that has worn out.
var ErrFailed = errors.New("nems: switch has worn out")

// Switch is one simulated NEMS contact switch.
//
// The hidden lifetime is fixed at fabrication; Actuate consumes it. Wear is
// tracked in fractional cycles so environmental acceleration composes.
type Switch struct {
	lifetime  float64 // hidden: cycles until failure at 25 °C
	wear      float64 // accumulated (accelerated) cycles
	actuated  uint64  // observable actuation count
	failed    bool
	failCycle uint64 // actuation index at which failure occurred (1-based)
}

// Fabricate draws a switch from the given lifetime distribution.
func Fabricate(d weibull.Dist, r *rng.RNG) *Switch {
	return &Switch{lifetime: float64(d.SampleCycles(r))}
}

// FabricateWithVariation draws a per-device effective distribution from the
// process-variation model, then a lifetime from it.
func FabricateWithVariation(v weibull.Variation, r *rng.RNG) *Switch {
	return Fabricate(v.Draw(r), r)
}

// FabricateDeterministic returns a switch that completes exactly
// lifetimeCycles successful actuations and fails on the next one — useful
// in tests and for ideal-device thought experiments (e.g. the paper's
// "wears out exactly after one access" forward-secrecy store, which is
// FabricateDeterministic(1)). Zero models an infant-mortality device that
// fails on its first actuation.
func FabricateDeterministic(lifetimeCycles uint64) *Switch {
	return &Switch{lifetime: float64(lifetimeCycles)}
}

// Actuate closes and reopens the switch once under the given environment.
// It returns ErrFailed if the switch has already worn out, or wears out
// during this actuation (the actuation that kills the switch does NOT
// conduct: the paper counts a device as working "for t accesses" if access
// t still succeeds).
func (s *Switch) Actuate(env Environment) error {
	if s.failed {
		return ErrFailed
	}
	s.actuated++
	s.wear += env.wearoutAcceleration()
	if s.wear > s.lifetime {
		s.failed = true
		s.failCycle = s.actuated
		return ErrFailed
	}
	return nil
}

// State is the mutable wear state of one switch, exported for durable
// checkpointing. The hidden lifetime is deliberately absent: a restore
// re-fabricates the switch from the original seed (which reproduces the
// identical lifetime) and then overlays this state, so the lifetime never
// leaves the simulated hardware — snapshots on disk reveal no more about
// remaining life than the adversary could learn by watching accesses.
type State struct {
	Wear      float64 `json:"wear"`
	Actuated  uint64  `json:"actuated"`
	FailCycle uint64  `json:"fail_cycle,omitempty"` // 0 = still working
}

// State captures the switch's mutable wear state.
func (s *Switch) State() State {
	return State{Wear: s.wear, Actuated: s.actuated, FailCycle: s.failCycle}
}

// RestoreState overlays a previously captured wear state onto the switch.
// The hidden lifetime is untouched — callers must restore onto a switch
// fabricated from the same RNG stream, or wearout semantics are undefined.
func (s *Switch) RestoreState(st State) {
	s.wear = st.Wear
	s.actuated = st.Actuated
	s.failCycle = st.FailCycle
	s.failed = st.FailCycle > 0
}

// Working reports whether the switch can still conduct.
func (s *Switch) Working() bool { return !s.failed }

// Wear returns the accumulated (environment-accelerated) actuation cycles.
// This is observable state, not a leak of the hidden lifetime: the
// controller served every actuation and knows each one's environment, so
// it could recompute this sum from its own request history. The
// wear-leveling planner ranks switches by it.
func (s *Switch) Wear() float64 { return s.wear }

// Actuations returns how many times Actuate has been called.
func (s *Switch) Actuations() uint64 { return s.actuated }

// FailedAt returns the 1-based actuation index at which the switch failed,
// or 0 if it is still working.
func (s *Switch) FailedAt() uint64 { return s.failCycle }

// String implements fmt.Stringer without leaking the hidden lifetime.
func (s *Switch) String() string {
	state := "working"
	if s.failed {
		state = fmt.Sprintf("failed@%d", s.failCycle)
	}
	return fmt.Sprintf("nems.Switch{actuations=%d, %s}", s.actuated, state)
}

// --- Populations ----------------------------------------------------------------

// Population fabricates batches of switches from one lifetime model and
// records fabrication statistics, standing in for a manufacturing lot.
type Population struct {
	Variation weibull.Variation
	rng       *rng.RNG
	produced  int
}

// NewPopulation creates a manufacturing lot model. If cvAlpha or cvBeta are
// nonzero, each device gets its own perturbed Weibull parameters.
func NewPopulation(nominal weibull.Dist, cvAlpha, cvBeta float64, r *rng.RNG) *Population {
	return &Population{
		Variation: weibull.Variation{Nominal: nominal, CVAlpha: cvAlpha, CVBeta: cvBeta},
		rng:       r,
	}
}

// Fabricate produces one switch from the lot.
func (p *Population) Fabricate() *Switch {
	p.produced++
	return FabricateWithVariation(p.Variation, p.rng)
}

// FabricateN produces n switches.
func (p *Population) FabricateN(n int) []*Switch {
	out := make([]*Switch, n)
	for i := range out {
		out[i] = p.Fabricate()
	}
	return out
}

// Produced returns the number of devices fabricated so far.
func (p *Population) Produced() int { return p.produced }

// MeasureLifetimes destructively cycles n fresh devices to failure and
// returns their observed lifetimes — the characterization experiment a
// fabricator would run to fit (α, β) for the DSE.
func (p *Population) MeasureLifetimes(n int, maxCycles uint64) []weibull.Obs {
	obs := make([]weibull.Obs, n)
	for i := range obs {
		s := p.Fabricate()
		var c uint64
		for c = 0; c < maxCycles; c++ {
			if err := s.Actuate(RoomTemp); err != nil {
				break
			}
		}
		if s.Working() {
			obs[i] = weibull.Obs{Time: float64(maxCycles), Censored: true}
		} else {
			obs[i] = weibull.Obs{Time: float64(s.FailedAt())}
		}
	}
	return obs
}
