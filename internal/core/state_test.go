package core

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
)

// stateTestDesign is a small design with encoding and several copies so
// state capture crosses copy boundaries.
func stateTestDesign(t *testing.T) dse.Design {
	t.Helper()
	d, err := dse.Explore(stateTestSpec())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func stateTestSpec() dse.Spec {
	s := dse.Spec{LAB: 30, KFrac: 0.1, ContinuousT: true}
	s.Dist.Alpha = 6
	s.Dist.Beta = 8
	s.Criteria.MinWork = 0.99
	s.Criteria.MaxOverrun = 0.01
	return s
}

// transcript drives an architecture to lockout and returns the outcome
// sequence plus every recovered secret.
func transcript(t *testing.T, a *Architecture) (outcomes []AccessOutcome, secrets [][]byte) {
	t.Helper()
	for i := 0; i < 100000; i++ {
		secret, err := a.Access(nems.RoomTemp)
		switch {
		case err == nil:
			outcomes = append(outcomes, AccessSuccess)
			secrets = append(secrets, secret)
		case errors.Is(err, ErrExhausted):
			outcomes = append(outcomes, AccessExhausted)
			return outcomes, secrets
		case errors.Is(err, ErrTransient):
			outcomes = append(outcomes, AccessTransient)
		case errors.Is(err, ErrDecodeFailed):
			outcomes = append(outcomes, AccessDecodeFailed)
		default:
			t.Fatalf("unexpected access error: %v", err)
		}
	}
	t.Fatal("architecture never locked out")
	return nil, nil
}

// TestStateRestoreRoundTrip checks the tentpole invariant: capture State
// mid-life, rebuild from the same (design, secret, seed), Restore, and the
// remaining transcript is bit-identical to the uninterrupted original.
func TestStateRestoreRoundTrip(t *testing.T) {
	design := stateTestDesign(t)
	secret := []byte("0123456789abcdef")
	const seed = 42

	orig, err := Build(design, secret, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	// Consume 17 accesses mid-traffic, including temperature variation so
	// fractional wear acceleration is exercised.
	for i := 0; i < 17; i++ {
		env := nems.RoomTemp
		if i%5 == 4 {
			env = nems.Environment{TempCelsius: 200}
		}
		_, err := orig.Access(env)
		if err != nil && !errors.Is(err, ErrTransient) && !errors.Is(err, ErrDecodeFailed) {
			t.Fatalf("access %d: %v", i, err)
		}
	}
	st := orig.State()

	// The state must survive a JSON round trip unchanged (it is persisted
	// as JSON inside WAL snapshots).
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded State
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, decoded) {
		t.Fatal("State does not round-trip through JSON")
	}

	restored, err := Build(design, secret, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored.State(), st) {
		t.Fatal("restored state differs from captured state")
	}
	gotTotal, gotOK := restored.Accesses()
	wantTotal, wantOK := orig.Accesses()
	if gotTotal != wantTotal || gotOK != wantOK {
		t.Fatalf("restored counters (%d, %d) != original (%d, %d)", gotTotal, gotOK, wantTotal, wantOK)
	}

	// From here on both must play out identically, byte for byte.
	wantOutcomes, wantSecrets := transcript(t, orig)
	gotOutcomes, gotSecrets := transcript(t, restored)
	if !reflect.DeepEqual(gotOutcomes, wantOutcomes) {
		t.Fatalf("post-restore outcomes diverge:\n got %v\nwant %v", gotOutcomes, wantOutcomes)
	}
	if !reflect.DeepEqual(gotSecrets, wantSecrets) {
		t.Fatal("post-restore secrets diverge")
	}
}

// TestRestoreRejectsWrongShape checks the validation errors.
func TestRestoreRejectsWrongShape(t *testing.T) {
	design := stateTestDesign(t)
	secret := []byte("0123456789abcdef")
	a, err := Build(design, secret, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	st := a.State()

	bad := st
	bad.Copies = st.Copies[:len(st.Copies)-1]
	if err := a.Restore(bad); err == nil {
		t.Error("Restore accepted a state with a missing copy")
	}

	bad = st
	bad.Copies = make([][]nems.State, len(st.Copies))
	copy(bad.Copies, st.Copies)
	bad.Copies[0] = st.Copies[0][:1]
	if err := a.Restore(bad); err == nil {
		t.Error("Restore accepted a state with missing switches")
	}

	bad = st
	bad.CurrentCopy = len(st.Copies) + 1
	if err := a.Restore(bad); err == nil {
		t.Error("Restore accepted an out-of-range current copy")
	}

	bad = st
	bad.TotalAttempts = 1
	bad.Successful = 2
	if err := a.Restore(bad); err == nil {
		t.Error("Restore accepted successes > attempts")
	}
}

// TestOutcomeString pins the wire labels used by the events endpoint.
func TestOutcomeString(t *testing.T) {
	want := map[AccessOutcome]string{
		AccessSuccess:      "success",
		AccessTransient:    "transient",
		AccessExhausted:    "exhausted",
		AccessDecodeFailed: "decode_failed",
		AccessOutcome(99):  "unknown",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("AccessOutcome(%d).String() = %q, want %q", int(o), o.String(), s)
		}
	}
}
