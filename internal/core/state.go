package core

import (
	"fmt"

	"lemonade/internal/nems"
)

// State is the complete mutable state of an Architecture, exported for
// durable persistence (snapshots in internal/wal). It is exact: the
// per-copy, per-switch wear states pin which devices are broken and how
// worn the survivors are, and the RNG field pins the fabrication stream
// position — so Build(same design, secret, seed) followed by Restore
// reproduces an architecture bit-identical to one that was never torn
// down. What it deliberately does NOT contain: the secret, the Shamir
// shares, and the hidden per-switch lifetimes, all of which are derived
// from the (design, secret, seed) triple at rebuild time.
type State struct {
	CurrentCopy   int            `json:"current_copy"`
	TotalAttempts uint64         `json:"total_attempts"`
	Successful    uint64         `json:"successful"`
	RNG           [4]uint64      `json:"rng"`
	Copies        [][]nems.State `json:"copies"`
}

// State captures the architecture's mutable state under its lock. The
// snapshot is consistent: it can never observe a half-applied access,
// because accesses hold the same lock for their full traversal.
func (a *Architecture) State() State {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := State{
		CurrentCopy:   a.cur,
		TotalAttempts: a.total,
		Successful:    a.ok,
		RNG:           a.r.State(),
		Copies:        make([][]nems.State, len(a.copies)),
	}
	for ci, c := range a.copies {
		sw := make([]nems.State, len(c.switches))
		for i, s := range c.switches {
			sw[i] = s.State()
		}
		st.Copies[ci] = sw
	}
	return st
}

// Restore overlays a previously captured State onto a freshly built
// architecture. The architecture must have been built from the same
// (design, secret, seed) triple that produced the state — Build is
// deterministic, so the hidden lifetimes and share encoding line up and
// replay after Restore is bit-identical to uninterrupted execution. The
// shape of the state (copy and switch counts) is validated; its origin
// cannot be, so callers (the WAL recovery path) are responsible for
// pairing states with their provisioning records.
func (a *Architecture) Restore(st State) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(st.Copies) != len(a.copies) {
		return fmt.Errorf("core: restore: state has %d copies, architecture has %d",
			len(st.Copies), len(a.copies))
	}
	for ci, sw := range st.Copies {
		if len(sw) != len(a.copies[ci].switches) {
			return fmt.Errorf("core: restore: copy %d has %d switch states, architecture has %d",
				ci, len(sw), len(a.copies[ci].switches))
		}
	}
	if st.CurrentCopy < 0 || st.CurrentCopy > len(a.copies) {
		return fmt.Errorf("core: restore: current copy %d out of range [0, %d]",
			st.CurrentCopy, len(a.copies))
	}
	if st.Successful > st.TotalAttempts {
		return fmt.Errorf("core: restore: %d successes exceed %d attempts",
			st.Successful, st.TotalAttempts)
	}
	a.cur = st.CurrentCopy
	a.total = st.TotalAttempts
	a.ok = st.Successful
	a.r.SetState(st.RNG)
	for ci, sw := range st.Copies {
		for i, s := range sw {
			a.copies[ci].switches[i].RestoreState(s)
		}
	}
	return nil
}
