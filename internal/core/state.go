package core

import (
	"fmt"

	"lemonade/internal/nems"
)

// State is the complete mutable state of an Architecture, exported for
// durable persistence (snapshots in internal/wal). It is exact: the
// per-copy, per-switch wear states pin which devices are broken and how
// worn the survivors are, and the RNG field pins the fabrication stream
// position — so Build(same design, secret, seed) followed by Restore
// reproduces an architecture bit-identical to one that was never torn
// down. What it deliberately does NOT contain: the secret, the Shamir
// shares, and the hidden per-switch lifetimes, all of which are derived
// from the (design, secret, seed) triple at rebuild time.
type State struct {
	CurrentCopy   int            `json:"current_copy"`
	TotalAttempts uint64         `json:"total_attempts"`
	Successful    uint64         `json:"successful"`
	RNG           [4]uint64      `json:"rng"`
	Copies        [][]nems.State `json:"copies"`

	// Adversarial-wearout and wear-leveling state. Every field is
	// omitempty so the serialized form of a pre-leveling unleveled
	// architecture is byte-identical to what it always was. Stressed can
	// be set on either variant (stress traffic targets both); the
	// remaining fields exist only on the leveled variant, where Assign
	// and Retired are per-copy (remap table, retired physical indices).
	Stressed      uint64  `json:"stressed,omitempty"`
	OpsSinceRemap uint64  `json:"ops_since_remap,omitempty"`
	Remaps        uint64  `json:"remaps,omitempty"`
	Assign        [][]int `json:"assign,omitempty"`
	Retired       [][]int `json:"retired,omitempty"`
}

// State captures the architecture's mutable state under its lock. The
// snapshot is consistent: it can never observe a half-applied access,
// because accesses hold the same lock for their full traversal.
func (a *Architecture) State() State {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := State{
		CurrentCopy:   a.cur,
		TotalAttempts: a.total,
		Successful:    a.ok,
		RNG:           a.r.State(),
		Copies:        make([][]nems.State, len(a.copies)),
	}
	for ci, c := range a.copies {
		sw := make([]nems.State, len(c.switches))
		for i, s := range c.switches {
			sw[i] = s.State()
		}
		st.Copies[ci] = sw
	}
	st.Stressed = a.stressed
	if a.leveling != nil {
		st.OpsSinceRemap = a.opsSince
		st.Remaps = a.remaps
		st.Assign = make([][]int, len(a.copies))
		st.Retired = make([][]int, len(a.copies))
		for ci, c := range a.copies {
			st.Assign[ci] = c.bank.Assign()
			retired := make([]int, 0)
			for p := 0; p < c.bank.Physical(); p++ {
				if c.bank.Retired(p) {
					retired = append(retired, p)
				}
			}
			st.Retired[ci] = retired
		}
	}
	return st
}

// Restore overlays a previously captured State onto a freshly built
// architecture. The architecture must have been built from the same
// (design, secret, seed) triple that produced the state — Build is
// deterministic, so the hidden lifetimes and share encoding line up and
// replay after Restore is bit-identical to uninterrupted execution. The
// shape of the state (copy and switch counts) is validated; its origin
// cannot be, so callers (the WAL recovery path) are responsible for
// pairing states with their provisioning records.
func (a *Architecture) Restore(st State) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(st.Copies) != len(a.copies) {
		return fmt.Errorf("core: restore: state has %d copies, architecture has %d",
			len(st.Copies), len(a.copies))
	}
	for ci, sw := range st.Copies {
		if len(sw) != len(a.copies[ci].switches) {
			return fmt.Errorf("core: restore: copy %d has %d switch states, architecture has %d",
				ci, len(sw), len(a.copies[ci].switches))
		}
	}
	if st.CurrentCopy < 0 || st.CurrentCopy > len(a.copies) {
		return fmt.Errorf("core: restore: current copy %d out of range [0, %d]",
			st.CurrentCopy, len(a.copies))
	}
	if st.Successful > st.TotalAttempts {
		return fmt.Errorf("core: restore: %d successes exceed %d attempts",
			st.Successful, st.TotalAttempts)
	}
	if a.leveling == nil {
		if st.Assign != nil || st.Retired != nil || st.OpsSinceRemap != 0 || st.Remaps != 0 {
			return fmt.Errorf("core: restore: leveled state onto an unleveled architecture")
		}
	} else {
		if len(st.Assign) != len(a.copies) {
			return fmt.Errorf("core: restore: state has %d remap tables, architecture has %d copies",
				len(st.Assign), len(a.copies))
		}
		if len(st.Retired) != len(a.copies) {
			return fmt.Errorf("core: restore: state has %d retirement sets, architecture has %d copies",
				len(st.Retired), len(a.copies))
		}
	}
	// Validate the leveling payload against scratch banks before mutating
	// anything: Restore must be all-or-nothing, and the shape checks above
	// do not cover assignment width/range/distinctness.
	if a.leveling != nil {
		for ci := range st.Assign {
			scratch, err := nems.NewBank(a.copies[ci].switches, a.design.N)
			if err != nil {
				return fmt.Errorf("core: restore: copy %d: %w", ci, err)
			}
			if err := scratch.SetAssign(st.Assign[ci]); err != nil {
				return fmt.Errorf("core: restore: copy %d: %w", ci, err)
			}
			for _, p := range st.Retired[ci] {
				if err := scratch.Retire(p); err != nil {
					return fmt.Errorf("core: restore: copy %d: %w", ci, err)
				}
			}
		}
	}
	a.cur = st.CurrentCopy
	a.total = st.TotalAttempts
	a.ok = st.Successful
	a.r.SetState(st.RNG)
	for ci, sw := range st.Copies {
		for i, s := range sw {
			a.copies[ci].switches[i].RestoreState(s)
		}
	}
	a.stressed = st.Stressed
	if a.leveling != nil {
		a.opsSince = st.OpsSinceRemap
		a.remaps = st.Remaps
		for ci := range st.Assign {
			b := a.copies[ci].bank
			if err := b.SetAssign(st.Assign[ci]); err != nil {
				return fmt.Errorf("core: restore: copy %d: %w", ci, err)
			}
			for _, p := range st.Retired[ci] {
				if err := b.Retire(p); err != nil {
					return fmt.Errorf("core: restore: copy %d: %w", ci, err)
				}
			}
		}
	}
	return nil
}
