package core

import (
	"bytes"
	"errors"
	"testing"

	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

// smallDesign explores a small architecture suitable for simulation.
func smallDesign(t *testing.T, lab int, kFrac float64) dse.Design {
	t.Helper()
	d, err := dse.Explore(dse.Spec{
		Dist:        weibull.MustNew(12, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         lab,
		KFrac:       kFrac,
		ContinuousT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuildAndAccessEncoded(t *testing.T) {
	design := smallDesign(t, 50, 0.10)
	secret := []byte("storage decryption key 0123456789abcdef")
	r := rng.New(1)
	a, err := Build(design, secret, r)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalDevices() != design.TotalDevices {
		t.Errorf("TotalDevices = %d, want %d", a.TotalDevices(), design.TotalDevices)
	}
	// The design guarantees at least LAB accesses with 99% per-copy
	// reliability; check the first LAB accesses mostly succeed and every
	// success yields the exact secret.
	succ := 0
	for i := 0; i < 50; i++ {
		got, err := a.Access(nems.RoomTemp)
		if err == nil {
			if !bytes.Equal(got, secret) {
				t.Fatalf("access %d returned wrong secret %q", i, got)
			}
			succ++
		}
	}
	if succ < 45 {
		t.Errorf("only %d/50 accesses succeeded within the guaranteed window", succ)
	}
}

func TestWearsOutAndStaysDead(t *testing.T) {
	design := smallDesign(t, 30, 0.10)
	r := rng.New(2)
	a, err := Build(design, []byte("secret"), r)
	if err != nil {
		t.Fatal(err)
	}
	// Drive far past the design bound.
	deadline := design.MaxAllowedAccesses() * 10
	var wornOut bool
	for i := 0; i < deadline+100; i++ {
		_, err := a.Access(nems.RoomTemp)
		if errors.Is(err, ErrExhausted) {
			wornOut = true
			break
		}
	}
	if !wornOut {
		t.Fatal("architecture never wore out")
	}
	if a.Alive() {
		t.Error("worn-out architecture claims to be alive")
	}
	// And it never recovers.
	for i := 0; i < 10; i++ {
		if _, err := a.Access(nems.RoomTemp); !errors.Is(err, ErrExhausted) {
			t.Fatal("worn-out architecture served an access")
		}
	}
}

func TestUsageBoundsRespected(t *testing.T) {
	// The core security property: total successful accesses stay within
	// [guaranteed min, design max + slack] across many trials.
	design := smallDesign(t, 40, 0.10)
	r := rng.New(3)
	const trials = 60
	minOK, maxOK := 1<<31, 0
	for tr := 0; tr < trials; tr++ {
		a, err := Build(design, []byte("secret"), r)
		if err != nil {
			t.Fatal(err)
		}
		succ := 0
		for a.Alive() {
			if _, err := a.Access(nems.RoomTemp); err == nil {
				succ++
			}
		}
		if succ < minOK {
			minOK = succ
		}
		if succ > maxOK {
			maxOK = succ
		}
	}
	if minOK < design.GuaranteedMinAccesses()-design.Copies {
		t.Errorf("a trial delivered only %d accesses, guarantee is %d", minOK, design.GuaranteedMinAccesses())
	}
	// Upper bound: each copy can overrun by a little with prob MaxOverrun;
	// allow a couple of accesses of slack per copy.
	limit := design.MaxAllowedAccesses() + 2*design.Copies
	if maxOK > limit {
		t.Errorf("a trial delivered %d accesses, beyond the allowed %d", maxOK, limit)
	}
}

func TestUnencodedReplicas(t *testing.T) {
	design := smallDesign(t, 20, 0) // k=1: replication
	if design.K != 1 {
		t.Fatalf("expected k=1 design, got k=%d", design.K)
	}
	r := rng.New(4)
	secret := []byte("replicated")
	a, err := Build(design, secret, r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := a.Access(nems.RoomTemp)
	if err != nil || !bytes.Equal(got, secret) {
		t.Errorf("first access failed: %v %q", err, got)
	}
}

func TestBuildValidation(t *testing.T) {
	design := smallDesign(t, 20, 0.10)
	r := rng.New(5)
	if _, err := Build(design, nil, r); err == nil {
		t.Error("empty secret should be rejected")
	}
	big := design
	big.N = 70_000
	big.K = 100
	if _, err := Build(big, []byte("x"), r); err == nil {
		t.Error("n beyond the GF(2^16) share space should be rejected")
	}
	degenerate := design
	degenerate.Copies = 0
	if _, err := Build(degenerate, []byte("x"), r); err == nil {
		t.Error("degenerate design should be rejected")
	}
}

func TestTransientFailureThenRecovery(t *testing.T) {
	// When the active copy dies mid-access the caller sees ErrTransient,
	// and the retry lands on the next copy.
	design := smallDesign(t, 30, 0.10)
	r := rng.New(6)
	a, err := Build(design, []byte("secret"), r)
	if err != nil {
		t.Fatal(err)
	}
	sawTransient, recovered := false, false
	for i := 0; i < design.MaxAllowedAccesses()*3 && a.Alive(); i++ {
		_, err := a.Access(nems.RoomTemp)
		if errors.Is(err, ErrTransient) {
			sawTransient = true
			if _, err2 := a.Access(nems.RoomTemp); err2 == nil {
				recovered = true
			}
		}
	}
	if !sawTransient {
		t.Skip("no transient failure observed in this seed (copies died exactly at boundaries)")
	}
	if !recovered {
		t.Log("note: no transient failure was followed by immediate recovery (possible if the last copy died)")
	}
}

func TestAccessCounters(t *testing.T) {
	design := smallDesign(t, 20, 0.10)
	r := rng.New(7)
	a, err := Build(design, []byte("secret"), r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_, _ = a.Access(nems.RoomTemp)
	}
	total, ok := a.Accesses()
	if total != 5 {
		t.Errorf("total = %d, want 5", total)
	}
	if ok > total {
		t.Error("successes exceed attempts")
	}
	if a.Design().TotalDevices != design.TotalDevices {
		t.Error("Design() accessor wrong")
	}
	if a.ExhaustedCopies() != a.CurrentCopy() {
		t.Error("ExhaustedCopies should equal CurrentCopy")
	}
}

func TestHeatCannotExtendUsage(t *testing.T) {
	// §2.1 security property at the architecture level: running hot can
	// only reduce the number of successful accesses.
	design := smallDesign(t, 30, 0.10)
	count := func(env nems.Environment, seed uint64) int {
		a, err := Build(design, []byte("secret"), rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		succ := 0
		for a.Alive() {
			if _, err := a.Access(env); err == nil {
				succ++
			}
		}
		return succ
	}
	var room, hot int
	for seed := uint64(10); seed < 20; seed++ {
		room += count(nems.RoomTemp, seed)
		hot += count(nems.Environment{TempCelsius: 500}, seed)
	}
	if hot >= room {
		t.Errorf("hot usage (%d) should be below room usage (%d)", hot, room)
	}
}

func TestWideStructureBeyond255(t *testing.T) {
	// A β=4-style wide structure: more than 255 devices per copy forces
	// the GF(2^16) sharing path.
	d, err := dse.Explore(dse.Spec{
		Dist:        weibull.MustNew(12, 4),
		Criteria:    reliability.DefaultCriteria,
		LAB:         40,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.N <= 255 {
		t.Skipf("β=4 design unexpectedly narrow (n=%d); wide path untested here", d.N)
	}
	r := rng.New(123)
	secret := []byte("wide-structure secret material")
	a, err := Build(d, secret, r)
	if err != nil {
		t.Fatal(err)
	}
	succ := 0
	for i := 0; i < 40; i++ {
		got, err := a.Access(nems.RoomTemp)
		if err == nil {
			if !bytes.Equal(got, secret) {
				t.Fatalf("wide decode returned wrong secret")
			}
			succ++
		}
	}
	if succ < 35 {
		t.Errorf("only %d/40 accesses succeeded on the wide architecture", succ)
	}
}
