package core

import (
	"errors"
	"fmt"

	"lemonade/internal/dse"
	"lemonade/internal/gf256"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
	"lemonade/internal/rs"
	"lemonade/internal/shamir"
)

// This file extends the architecture to a harsher fault model than the
// paper's. The paper assumes a worn switch *fails open* (returns
// nothing) — an erasure. Real contact failures can also be resistive or
// intermittent: the switch conducts but the read is garbage. Under that
// model a plain Shamir decode is silently wrong (k shares, one corrupt →
// a wrong secret, no error), so the noisy architecture decodes its Shamir
// shares with Berlekamp–Welch error correction instead of interpolation —
// the McEliece–Sarwate observation the paper cites ([39]): Shamir shares
// ARE a Reed-Solomon codeword, so up to ⌊(collected−k)/2⌋ corrupted
// components per access are corrected, with the threshold secrecy of the
// sharing fully preserved.

// NoisyArchitecture is a limited-use secret store robust to garbage-mode
// switch failures.
type NoisyArchitecture struct {
	design      dse.Design
	shares      []shamir.Share // canonical share set, reused across copies
	garbageProb float64        // probability a worn switch conducts garbage
	copies      []*noisyCopy
	cur         int
	total, ok   uint64
	r           *rng.RNG
}

type noisyCopy struct {
	switches []*nems.Switch
	k        int
}

func (c *noisyCopy) alive() bool {
	working := 0
	for _, sw := range c.switches {
		if sw.Working() {
			working++
			if working >= c.k {
				return true
			}
		}
	}
	return false
}

// BuildNoisy fabricates an error-correcting architecture. garbageProb is
// the probability that an actuation of a worn-out switch conducts
// corrupted data instead of failing open.
func BuildNoisy(design dse.Design, secret []byte, garbageProb float64, r *rng.RNG) (*NoisyArchitecture, error) {
	if len(secret) == 0 {
		return nil, errors.New("core: empty secret")
	}
	if garbageProb < 0 || garbageProb > 1 {
		return nil, fmt.Errorf("core: garbageProb %g out of [0,1]", garbageProb)
	}
	if design.N < 1 || design.K < 2 || design.Copies < 1 {
		return nil, fmt.Errorf("core: noisy architecture needs an encoded design (k >= 2), got %v", design)
	}
	if design.N > shamir.MaxShares {
		return nil, fmt.Errorf("core: noisy architecture needs n <= %d (GF(256)), got %d",
			shamir.MaxShares, design.N)
	}
	shares, err := shamir.Split(secret, design.K, design.N, r)
	if err != nil {
		return nil, fmt.Errorf("core: encoding secret: %w", err)
	}
	a := &NoisyArchitecture{
		design:      design,
		shares:      shares,
		garbageProb: garbageProb,
		copies:      make([]*noisyCopy, design.Copies),
		r:           r.Derive("noise"),
	}
	for ci := range a.copies {
		c := &noisyCopy{switches: make([]*nems.Switch, design.N), k: design.K}
		for i := range c.switches {
			c.switches[i] = nems.Fabricate(design.Spec.Dist, r)
		}
		a.copies[ci] = c
	}
	return a, nil
}

// Access performs one access; semantics match Architecture.Access.
func (a *NoisyArchitecture) Access(env nems.Environment) ([]byte, error) {
	a.total++
	for a.cur < len(a.copies) {
		c := a.copies[a.cur]
		if !c.alive() {
			a.cur++
			continue
		}
		secret := a.accessCopy(c, env)
		if secret == nil {
			a.cur++
			return nil, ErrTransient
		}
		a.ok++
		return secret, nil
	}
	return nil, ErrExhausted
}

func (a *NoisyArchitecture) accessCopy(c *noisyCopy, env nems.Environment) []byte {
	secretLen := len(a.shares[0].Data)
	var (
		xs   []byte
		data [][]byte // collected share bytes, parallel to xs
	)
	for i, sw := range c.switches {
		err := sw.Actuate(env)
		switch {
		case err == nil:
			xs = append(xs, a.shares[i].X)
			data = append(data, a.shares[i].Data)
		case a.r.Bernoulli(a.garbageProb):
			// resistive/intermittent failure: conducts garbage
			garbage := make([]byte, secretLen)
			a.r.Bytes(garbage)
			xs = append(xs, a.shares[i].X)
			data = append(data, garbage)
		}
	}
	if len(xs) < c.k {
		return nil
	}
	secret := make([]byte, secretLen)
	ys := make([]byte, len(xs))
	for b := 0; b < secretLen; b++ {
		for i := range data {
			ys[i] = data[i][b]
		}
		poly, err := rs.RecoverPolynomial(xs, ys, c.k)
		if err != nil {
			return nil
		}
		secret[b] = poly.Eval(0)
	}
	return secret
}

// Alive reports whether a future access could still succeed.
func (a *NoisyArchitecture) Alive() bool {
	for i := a.cur; i < len(a.copies); i++ {
		if a.copies[i].alive() {
			return true
		}
	}
	return false
}

// Accesses returns (attempted, successful) access counts.
func (a *NoisyArchitecture) Accesses() (total, successful uint64) { return a.total, a.ok }

// interpolateNaive decodes the same share set with plain Lagrange
// interpolation (no error correction) — exported for the tests that show
// why garbage faults break the plain architecture.
func interpolateNaive(xs []byte, ys []byte, k int) (byte, error) {
	return gf256.Interpolate(xs[:k], ys[:k], 0)
}
