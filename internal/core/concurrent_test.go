package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"lemonade/internal/dse"
	"lemonade/internal/nems"
)

// exactBudgetArch builds an architecture with a hard, known wearout
// budget: copies × lifetime successful accesses, then lockout forever.
// Deterministic single-switch copies (n=1, k=1) remove the statistical
// spread, so the concurrency test can assert an exact bound.
func exactBudgetArch(copies int, lifetime uint64, secret []byte) *Architecture {
	a := &Architecture{
		design: dse.Design{N: 1, K: 1, Copies: copies, T: int(lifetime)},
		copies: make([]*archCopy, copies),
	}
	for ci := range a.copies {
		a.copies[ci] = &archCopy{
			switches: []*nems.Switch{nems.FabricateDeterministic(lifetime)},
			dec:      replicaDecoder{secret: secret},
			k:        1,
		}
	}
	return a
}

// TestConcurrentAccessNeverExceedsBudget is the satellite requirement: N
// goroutines hammer Access concurrently (run under -race); the number of
// successes never exceeds the hardware wearout budget, and once the
// budget is spent every access returns ErrExhausted.
func TestConcurrentAccessNeverExceedsBudget(t *testing.T) {
	const (
		copies   = 3
		lifetime = 40
		budget   = copies * lifetime
		workers  = 16
	)
	secret := []byte("limited-use")
	a := exactBudgetArch(copies, lifetime, secret)

	var successes, transients, exhausted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				got, err := a.Access(nems.RoomTemp)
				switch {
				case err == nil:
					if string(got) != string(secret) {
						t.Errorf("Access returned %q, want %q", got, secret)
						return
					}
					successes.Add(1)
				case errors.Is(err, ErrTransient):
					transients.Add(1)
				case errors.Is(err, ErrExhausted):
					exhausted.Add(1)
					return
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := successes.Load(); got != budget {
		t.Errorf("successes = %d, want exactly the hardware budget %d", got, budget)
	}
	// Each copy dies on the actuation that exceeds its lifetime — that
	// discovering access is reported transient (retry hits the next copy) —
	// so deterministic switches yield exactly one transient per copy.
	if got := transients.Load(); got != copies {
		t.Errorf("transients = %d, want exactly %d (one per copy death)", got, copies)
	}
	if a.Alive() {
		t.Error("architecture alive after budget spent")
	}
	total, okCount := a.Accesses()
	if okCount != uint64(budget) {
		t.Errorf("Accesses() ok = %d, want %d", okCount, budget)
	}
	if total != uint64(budget)+uint64(transients.Load())+uint64(exhausted.Load()) {
		t.Errorf("total %d != budget %d + transients %d + exhausted probes %d",
			total, budget, transients.Load(), exhausted.Load())
	}

	// Post-lockout: always ErrExhausted, from every goroutine.
	var wg2 sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			for i := 0; i < 10; i++ {
				if _, err := a.Access(nems.RoomTemp); !errors.Is(err, ErrExhausted) {
					t.Errorf("post-lockout Access = %v, want ErrExhausted", err)
					return
				}
			}
		}()
	}
	wg2.Wait()
}

// TestAccessContextCancellation checks that a done context refuses the
// access before any wearout is consumed.
func TestAccessContextCancellation(t *testing.T) {
	a := exactBudgetArch(1, 5, []byte("s"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.AccessContext(ctx, nems.RoomTemp); !errors.Is(err, context.Canceled) {
		t.Fatalf("AccessContext = %v, want context.Canceled", err)
	}
	if total, _ := a.Accesses(); total != 0 {
		t.Errorf("cancelled access consumed wearout: total = %d", total)
	}
	// The budget is intact: all 5 accesses still succeed.
	for i := 0; i < 5; i++ {
		if _, err := a.Access(nems.RoomTemp); err != nil {
			t.Fatalf("access %d after cancel: %v", i, err)
		}
	}
	// Access 6 kills the only copy (transient), access 7 reports lockout.
	if _, err := a.Access(nems.RoomTemp); !errors.Is(err, ErrTransient) {
		t.Fatalf("copy-killing access = %v, want ErrTransient", err)
	}
	if _, err := a.Access(nems.RoomTemp); !errors.Is(err, ErrExhausted) {
		t.Fatalf("access past budget = %v, want ErrExhausted", err)
	}
}

// TestConcurrentObserverCounts checks the observer sees every attempt
// exactly once even under concurrency (it runs with the lock held).
func TestConcurrentObserverCounts(t *testing.T) {
	const budget = 30
	a := exactBudgetArch(1, budget, []byte("s"))
	var events atomic.Int64
	a.SetObserver(func(AccessEvent) { events.Add(1) })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, err := a.Access(nems.RoomTemp); errors.Is(err, ErrExhausted) {
					return
				}
			}
		}()
	}
	wg.Wait()
	total, _ := a.Accesses()
	if got := events.Load(); got != int64(total) {
		t.Errorf("observer saw %d events, architecture counted %d attempts", got, total)
	}
}
