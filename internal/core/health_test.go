package core

import (
	"testing"

	"lemonade/internal/nems"
	"lemonade/internal/rng"
)

func TestHealthFreshArchitecture(t *testing.T) {
	design := smallDesign(t, 40, 0.10)
	r := rng.New(51)
	a, err := Build(design, []byte("secret"), r)
	if err != nil {
		t.Fatal(err)
	}
	h := a.Health()
	if h.FreshCopies != design.Copies-1 {
		t.Errorf("fresh copies = %d, want %d", h.FreshCopies, design.Copies-1)
	}
	if h.ActiveCopyWorking != design.N {
		t.Errorf("active working = %d, want %d", h.ActiveCopyWorking, design.N)
	}
	if h.ActiveCopyAccesses != 0 {
		t.Errorf("fresh copy has %d accesses", h.ActiveCopyAccesses)
	}
	// the estimate should be near the guaranteed budget
	est := h.EstRemainingAccesses
	if est < float64(design.GuaranteedMinAccesses())*0.9 ||
		est > float64(design.MaxAllowedAccesses())*1.3 {
		t.Errorf("fresh estimate %.1f outside [%d, %d] band",
			est, design.GuaranteedMinAccesses(), design.MaxAllowedAccesses())
	}
	if h.MigrateAdvised {
		t.Error("fresh architecture should not advise migration")
	}
}

func TestHealthDeclinesMonotonically(t *testing.T) {
	design := smallDesign(t, 40, 0.10)
	r := rng.New(52)
	a, err := Build(design, []byte("secret"), r)
	if err != nil {
		t.Fatal(err)
	}
	prev := a.Health().EstRemainingAccesses
	for i := 0; i < 20; i++ {
		_, _ = a.Access(nems.RoomTemp)
		cur := a.Health().EstRemainingAccesses
		if cur > prev+1.5 { // new-copy handover can bump the estimate by <1 access
			t.Errorf("estimate rose from %.2f to %.2f at access %d", prev, cur, i)
		}
		prev = cur
	}
}

func TestHealthAdvisesMigrationNearDeath(t *testing.T) {
	design := smallDesign(t, 40, 0.10)
	r := rng.New(53)
	a, err := Build(design, []byte("secret"), r)
	if err != nil {
		t.Fatal(err)
	}
	advised := false
	for a.Alive() {
		h := a.Health()
		if h.MigrateAdvised {
			advised = true
		}
		if _, err := a.Access(nems.RoomTemp); err == ErrExhausted {
			break
		}
	}
	if !advised {
		t.Error("migration was never advised across the architecture's whole life")
	}
}

func TestHealthOfDeadArchitecture(t *testing.T) {
	design := smallDesign(t, 30, 0.10)
	r := rng.New(54)
	a, err := Build(design, []byte("secret"), r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < design.MaxAllowedAccesses()*5 && a.Alive(); i++ {
		_, _ = a.Access(nems.RoomTemp)
	}
	// drive the cursor past the end
	for i := 0; i < 3; i++ {
		_, _ = a.Access(nems.RoomTemp)
	}
	h := a.Health()
	if h.FreshCopies != 0 || h.EstRemainingAccesses != 0 {
		t.Errorf("dead architecture health: %+v", h)
	}
}

func TestObserverSeesEveryAttempt(t *testing.T) {
	design := smallDesign(t, 30, 0.10)
	r := rng.New(61)
	a, err := Build(design, []byte("secret"), r)
	if err != nil {
		t.Fatal(err)
	}
	var events []AccessEvent
	a.SetObserver(func(ev AccessEvent) { events = append(events, ev) })
	attempts := 0
	for i := 0; i < design.MaxAllowedAccesses()*3+10; i++ {
		attempts++
		if _, err := a.Access(nems.RoomTemp); err == ErrExhausted {
			break
		}
	}
	if len(events) != attempts {
		t.Fatalf("observer saw %d events for %d attempts", len(events), attempts)
	}
	// events carry monotone attempt numbers and plausible fields
	var successes, transients, wornouts int
	for i, ev := range events {
		if ev.Attempt != uint64(i+1) {
			t.Fatalf("event %d has attempt %d", i, ev.Attempt)
		}
		switch ev.Outcome {
		case AccessSuccess:
			successes++
			if ev.Conducting < design.K {
				t.Error("successful access with too few conducting switches")
			}
		case AccessTransient:
			transients++
		case AccessExhausted:
			wornouts++
		}
	}
	if successes == 0 || wornouts != 1 {
		t.Errorf("event mix: %d success, %d transient, %d wornout", successes, transients, wornouts)
	}
	// the last event is the wearout
	if events[len(events)-1].Outcome != AccessExhausted {
		t.Error("final event should be AccessExhausted")
	}
	// disabling the observer stops events
	a.SetObserver(nil)
	n := len(events)
	_, _ = a.Access(nems.RoomTemp)
	if len(events) != n {
		t.Error("nil observer should disable events")
	}
}
