package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"lemonade/internal/nems"
	"lemonade/internal/rng"
)

// runMaintenance applies pending remap plans the way a durable caller
// would: Retire the worn switches, then install the assignment. Tests
// drive it explicitly after wear-consuming ops.
func runMaintenance(t *testing.T, a *Architecture) int {
	t.Helper()
	applied := 0
	for {
		plan, ok := a.PendingRemap()
		if !ok {
			return applied
		}
		for _, p := range plan.Retire {
			if err := a.Retire(plan.Copy, p); err != nil {
				t.Fatalf("Retire(%d, %d): %v", plan.Copy, p, err)
			}
		}
		if err := a.ApplyRemap(plan.Copy, plan.Assign); err != nil {
			t.Fatalf("ApplyRemap(%d, %v): %v", plan.Copy, plan.Assign, err)
		}
		applied++
	}
}

func TestBuildLeveledAccess(t *testing.T) {
	design := smallDesign(t, 50, 0.10)
	secret := []byte("storage decryption key 0123456789abcdef")
	lv := Leveling{Spares: design.N / 2, Epoch: 10}
	a, err := BuildLeveled(design, secret, lv, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := a.Leveling(); !ok || got != lv {
		t.Fatalf("Leveling() = %v, %v; want %v, true", got, ok, lv)
	}
	if want := (design.N + lv.Spares) * design.Copies; a.TotalDevices() != want {
		t.Errorf("TotalDevices = %d, want %d (spares included)", a.TotalDevices(), want)
	}
	succ := 0
	for i := 0; i < 50; i++ {
		got, err := a.Access(nems.RoomTemp)
		if err == nil {
			if !bytes.Equal(got, secret) {
				t.Fatalf("access %d returned wrong secret %q", i, got)
			}
			succ++
		}
		runMaintenance(t, a)
	}
	if succ < 45 {
		t.Errorf("only %d/50 accesses succeeded within the guaranteed window", succ)
	}
}

func TestStressValidation(t *testing.T) {
	design := smallDesign(t, 30, 0.10)
	a, err := Build(design, []byte("s"), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := a.StressContext(ctx, nems.RoomTemp, []int{0}, 0); err == nil {
		t.Error("Stress with 0 pulses accepted")
	}
	if _, err := a.StressContext(ctx, nems.RoomTemp, nil, 1); err == nil {
		t.Error("Stress with no targets accepted")
	}
	if _, err := a.StressContext(ctx, nems.RoomTemp, []int{design.N}, 1); err == nil {
		t.Error("Stress with out-of-range index accepted")
	}
	if _, err := a.StressContext(ctx, nems.RoomTemp, []int{-1}, 1); err == nil {
		t.Error("Stress with negative index accepted")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := a.StressContext(canceled, nems.RoomTemp, []int{0}, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("Stress on canceled ctx = %v, want context.Canceled", err)
	}
	if got := a.Stressed(); got != 0 {
		t.Errorf("rejected stress consumed budget: Stressed = %d", got)
	}
}

// TestStressNeverRevealsAndNeverAdvances pins the confidentiality shape of
// the stress path: it returns conduction counts only, and a copy killed by
// stress is not skipped until a real access observes it.
func TestStressNeverRevealsAndNeverAdvances(t *testing.T) {
	design := smallDesign(t, 30, 0.10)
	a, err := Build(design, []byte("attack-target-secret"), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	targets := make([]int, design.N)
	for i := range targets {
		targets[i] = i
	}
	// Burn every copy down with hot stress pulses. Stress only reaches the
	// active copy, so a real access has to observe each corpse and move on
	// before the attacker can touch the next copy.
	hot := nems.Environment{TempCelsius: 400}
	var lastErr error
	for burned := 0; burned < design.Copies; burned++ {
		before := a.CurrentCopy()
		for i := 0; i < 20000; i++ {
			n, err := a.StressContext(ctx, hot, targets, 1)
			if err != nil {
				t.Fatalf("stress: %v", err)
			}
			if n == 0 {
				break
			}
		}
		if a.CurrentCopy() != before {
			t.Fatalf("stress advanced the active copy from %d to %d", before, a.CurrentCopy())
		}
		_, lastErr = a.Access(nems.RoomTemp)
	}
	if a.Stressed() == 0 {
		t.Fatal("Stressed counter did not advance")
	}
	if !errors.Is(lastErr, ErrExhausted) {
		if _, err := a.Access(nems.RoomTemp); !errors.Is(err, ErrExhausted) {
			t.Fatalf("architecture not exhausted after stress killed every copy: %v", err)
		}
	}
}

// TestLeveledSurvivesTargetedAttack is the core defense claim: under a
// targeted stress pattern that burns out an unleveled architecture's
// victim switches, the leveled variant rotates the heat across spares and
// keeps serving strictly longer.
func TestLeveledSurvivesTargetedAttack(t *testing.T) {
	design := smallDesign(t, 30, 0.10)
	secret := []byte("the same secret for both variants")
	// Attack the first k share indices — the minimum set whose loss kills
	// an access — with hot pulses between legitimate accesses.
	targets := make([]int, design.K)
	for i := range targets {
		targets[i] = i
	}
	hot := nems.Environment{TempCelsius: 400}
	ctx := context.Background()

	survive := func(a *Architecture) (okAccesses int) {
		for i := 0; i < 5000; i++ {
			if _, err := a.StressContext(ctx, hot, targets, 2); errors.Is(err, ErrExhausted) {
				return okAccesses
			}
			runMaintenance(t, a)
			got, err := a.Access(nems.RoomTemp)
			runMaintenance(t, a)
			if errors.Is(err, ErrExhausted) {
				return okAccesses
			}
			if err == nil {
				if !bytes.Equal(got, secret) {
					t.Fatalf("recovered wrong secret under attack")
				}
				okAccesses++
			}
		}
		return okAccesses
	}

	plain, err := Build(design, secret, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	leveled, err := BuildLeveled(design, secret, Leveling{Spares: design.N, Epoch: 4}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	plainOK := survive(plain)
	leveledOK := survive(leveled)
	if leveledOK <= plainOK {
		t.Fatalf("leveled served %d accesses under attack, unleveled %d; want strictly more", leveledOK, plainOK)
	}
	if ps, ls := plain.WearSkew(), leveled.WearSkew(); ls >= ps {
		t.Fatalf("leveled wear skew %v not tighter than unleveled %v", ls, ps)
	}
	if leveled.Remaps() == 0 {
		t.Fatal("defense never rotated")
	}
}

// TestLeveledStateRoundTrip pins the leveled State/Restore contract:
// capture → rebuild → restore reproduces identical bytes, including remap
// tables and retirements, and the restored architecture behaves
// identically.
func TestLeveledStateRoundTrip(t *testing.T) {
	design := smallDesign(t, 30, 0.10)
	secret := []byte("round-trip secret")
	lv := Leveling{Spares: 4, Epoch: 3}
	a, err := BuildLeveled(design, secret, lv, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		_, _ = a.StressContext(ctx, nems.Environment{TempCelsius: 400}, []int{0, 1}, 1)
		runMaintenance(t, a)
		_, _ = a.Access(nems.RoomTemp)
		runMaintenance(t, a)
	}
	st := a.State()
	if st.Assign == nil || st.Retired == nil {
		t.Fatal("leveled state missing remap payload")
	}
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}

	b, err := BuildLeveled(design, secret, lv, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	blob2, err := json.Marshal(b.State())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("restored state diverged:\n%s\nvs\n%s", blob, blob2)
	}
	// Both must behave identically from here on.
	for i := 0; i < 10; i++ {
		s1, e1 := a.Access(nems.RoomTemp)
		s2, e2 := b.Access(nems.RoomTemp)
		if !bytes.Equal(s1, s2) || !errors.Is(e1, e2) && !errors.Is(e2, e1) && (e1 != nil || e2 != nil) {
			t.Fatalf("access %d diverged: (%q, %v) vs (%q, %v)", i, s1, e1, s2, e2)
		}
	}
}

func TestRestoreRejectsVariantMismatch(t *testing.T) {
	design := smallDesign(t, 30, 0.10)
	secret := []byte("mismatch")
	lv := Leveling{Spares: 2, Epoch: 3}

	leveled, err := BuildLeveled(design, secret, lv, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Build(design, secret, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Restore(leveled.State()); err == nil {
		t.Error("unleveled architecture accepted a leveled state")
	}

	// Corrupt the remap payload: wrong width, duplicate target, bad retire.
	fresh := func() *Architecture {
		a, err := BuildLeveled(design, secret, lv, rng.New(13))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	good := leveled.State()
	bad := good
	bad.Assign = append([][]int{}, good.Assign...)
	bad.Assign[0] = []int{0}
	if err := fresh().Restore(bad); err == nil {
		t.Error("Restore accepted a truncated remap table")
	}
	bad = good
	bad.Retired = append([][]int{}, good.Retired...)
	bad.Retired[0] = []int{design.N + lv.Spares}
	if err := fresh().Restore(bad); err == nil {
		t.Error("Restore accepted an out-of-range retirement")
	}
	bad = good
	bad.Assign = nil
	bad.Retired = nil
	if err := fresh().Restore(bad); err == nil {
		t.Error("leveled architecture accepted a state without remap payload")
	}
}

// TestUnleveledStateUnchangedByStressless pins serialization backward
// compatibility: an unleveled architecture that has never been stressed
// marshals exactly as before leveling existed (no new keys).
func TestUnleveledStateUnchangedByStressless(t *testing.T) {
	design := smallDesign(t, 30, 0.10)
	a, err := Build(design, []byte("compat"), rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = a.Access(nems.RoomTemp)
	blob, err := json.Marshal(a.State())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"stressed", "ops_since_remap", "remaps", "assign", "retired"} {
		if bytes.Contains(blob, []byte(`"`+key+`"`)) {
			t.Errorf("unleveled state leaked new key %q: %s", key, blob)
		}
	}
}
