// Package core is the paper's primary contribution as a usable library: a
// limited-use security architecture that physically stores a secret behind
// wearout hardware.
//
// An Architecture is built from a dse.Design (which fixes the number of
// copies, the parallel-structure size n, and the survivor threshold k) plus
// the secret to protect. At fabrication the secret is encoded — replicated
// for k = 1, Shamir (k, n) threshold-shared for k > 1 (§4.1.4) — and each
// component is one-time-programmed into a store reachable only through its
// own simulated NEMS switch. Every access actuates the active copy's
// switches, collects the components whose switches conducted, and decodes
// the secret iff at least k components were recovered. Once every copy has
// worn out the secret is physically unreachable forever.
//
// The Shamir encoding is what makes partial wearout safe: an adversary who
// recovers k−1 components (because only k−1 switches still conduct) learns
// nothing about the secret.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
	"lemonade/internal/shamir"
	"lemonade/internal/shamir16"
)

// Typed sentinels. Callers classify access failures with errors.Is; the
// lemonaded server maps them onto HTTP status codes (ErrExhausted → 410,
// ErrDecodeFailed → 422).
var (
	// ErrExhausted is returned once every copy of the architecture has
	// degraded below its survivor threshold: the secret is gone forever.
	ErrExhausted = errors.New("core: architecture exhausted; secret unrecoverable")
	// ErrTransient is returned when an access failed but a later access
	// may still succeed (the active copy died mid-access and the next
	// copy takes over on retry).
	ErrTransient = errors.New("core: access failed; retry")
	// ErrDecodeFailed is returned when enough switches conducted but the
	// collected components did not reconstruct the secret — corrupted
	// share state rather than wearout. The failing copy is retired and a
	// retry proceeds on the next copy, like a transient failure.
	ErrDecodeFailed = errors.New("core: component decode failed")
)

// AccessOutcome classifies an access attempt for observers.
type AccessOutcome int

// Access outcomes.
const (
	AccessSuccess      AccessOutcome = iota // secret recovered
	AccessTransient                         // active copy died mid-access; retry
	AccessExhausted                         // architecture exhausted
	AccessDecodeFailed                      // enough switches conducted but decode failed
)

// String renders the outcome as the stable wire label used by the events
// API and the metrics exposition.
func (o AccessOutcome) String() string {
	switch o {
	case AccessSuccess:
		return "success"
	case AccessTransient:
		return "transient"
	case AccessExhausted:
		return "exhausted"
	case AccessDecodeFailed:
		return "decode_failed"
	default:
		return "unknown"
	}
}

// AccessEvent describes one completed access attempt, for telemetry.
type AccessEvent struct {
	Attempt    uint64 // 1-based attempt number
	Copy       int    // copy that served (or refused) the access
	Conducting int    // switches that conducted during the access
	Outcome    AccessOutcome
}

// Architecture is a fabricated limited-use secret store.
//
// An Architecture is safe for concurrent use: accesses from multiple
// goroutines are serialized on an internal mutex, mirroring the hardware —
// a physical parallel structure fires once per access, so two concurrent
// requests are two accesses, each consuming wearout. Total successful
// accesses can therefore never exceed the hardware's wearout budget no
// matter how many callers race.
type Architecture struct {
	design dse.Design

	mu       sync.Mutex // guards everything below
	copies   []*archCopy
	cur      int
	total    uint64 // accesses attempted
	ok       uint64 // accesses that yielded the secret
	observer func(AccessEvent)
	// r is the fabrication RNG, retained after Build so State/Restore can
	// checkpoint the exact stream position: any future draw (noise models,
	// re-keying) then replays bit-identically after recovery.
	r *rng.RNG

	// Wear-leveling state; leveling is nil for the unleveled variant.
	leveling *Leveling
	stressed uint64 // stress pulses served (targeted attack traffic)
	opsSince uint64 // wear-consuming ops since the last remap rotation
	remaps   uint64 // rotations applied over the architecture's lifetime
}

// SetObserver installs a callback invoked synchronously after every access
// attempt — the hook a deployment uses for usage telemetry and
// tamper/exhaustion alerting. A nil observer disables it. The callback
// runs with the architecture's lock held and must not call back into the
// architecture.
func (a *Architecture) SetObserver(fn func(AccessEvent)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.observer = fn
}

// decoder reconstructs the secret from the switch indices that conducted
// during an access. Implementations: plain replication (k=1), Shamir over
// GF(256) (k>1, n ≤ 255) and Shamir over GF(2^16) (wide structures).
type decoder interface {
	combine(conducting []int) ([]byte, error)
}

// replicaDecoder: every switch guards a full copy of the secret.
type replicaDecoder struct{ secret []byte }

func (d replicaDecoder) combine(conducting []int) ([]byte, error) {
	out := make([]byte, len(d.secret))
	copy(out, d.secret)
	return out, nil
}

// narrowDecoder: GF(256) Shamir shares, switch i guards share i. The
// share-selection scratch is reused across accesses; decoders are only
// invoked with the architecture lock held, so reuse cannot race.
type narrowDecoder struct {
	shares []shamir.Share
	k      int
	got    []shamir.Share // scratch, reused under the architecture lock
}

func (d *narrowDecoder) combine(conducting []int) ([]byte, error) {
	got := d.got[:0]
	for _, i := range conducting {
		got = append(got, d.shares[i])
		if len(got) == d.k {
			break
		}
	}
	d.got = got
	// The output is the one allocation an access must make: the secret is
	// handed to the caller, so it cannot come from a reused buffer.
	out := make([]byte, len(d.shares[0].Data))
	n, err := shamir.CombineInto(got, d.k, out)
	if err != nil {
		return nil, err
	}
	return out[:n], nil
}

// wideDecoder: GF(2^16) Shamir shares for structures wider than 255.
type wideDecoder struct {
	shares []shamir16.Share
	k      int
	got    []shamir16.Share // scratch, reused under the architecture lock
}

func (d *wideDecoder) combine(conducting []int) ([]byte, error) {
	got := d.got[:0]
	for _, i := range conducting {
		got = append(got, d.shares[i])
		if len(got) == d.k {
			break
		}
	}
	d.got = got
	out := make([]byte, 2*len(d.shares[0].Data))
	n, err := shamir16.CombineInto(got, d.k, out)
	if err != nil {
		return nil, err
	}
	return out[:n], nil
}

// archCopy is one serially-used copy: n logical slots, each guarding one
// component share. Unleveled, slot i IS switches[i]. Leveled, switches
// holds the whole physical pool (primaries + spares) and bank routes each
// logical slot onto its currently assigned physical switch.
type archCopy struct {
	switches   []*nems.Switch
	bank       *nems.Bank // nil = unleveled: slot i fires switches[i]
	dec        decoder
	k          int
	conducting []int // scratch, reused across accesses under the architecture lock
}

// slots returns the copy's logical width (the share count n).
func (c *archCopy) slots() int {
	if c.bank != nil {
		return c.bank.Slots()
	}
	return len(c.switches)
}

// actuate fires logical slot i, through the remap table if present.
func (c *archCopy) actuate(i int, env nems.Environment) error {
	if c.bank != nil {
		return c.bank.Actuate(i, env)
	}
	return c.switches[i].Actuate(env)
}

// alive reports whether the copy could still serve an access. Unleveled
// that means at least k switches still conduct. Leveled it is the bank's
// service potential — at least k usable physicals — because a rotation can
// move spares under dead slots before the next access, so the copy is not
// dead merely because the current mapping is.
func (c *archCopy) alive() bool {
	if c.bank != nil {
		return c.bank.Usable() >= c.k
	}
	working := 0
	for _, sw := range c.switches {
		if sw.Working() {
			working++
			if working >= c.k {
				return true
			}
		}
	}
	return false
}

// access actuates every logical slot (physically the whole parallel
// structure fires on each access) and returns the recovered secret (nil on
// failure) plus how many switches conducted. A non-nil error distinguishes
// a decode failure (enough switches conducted, reconstruction failed) from
// plain wearout below threshold.
func (c *archCopy) access(env nems.Environment) ([]byte, int, error) {
	conducting := c.conducting[:0]
	for i, n := 0, c.slots(); i < n; i++ {
		if c.actuate(i, env) == nil {
			conducting = append(conducting, i)
		}
	}
	c.conducting = conducting
	if len(conducting) < c.k {
		return nil, len(conducting), nil
	}
	secret, err := c.dec.combine(conducting)
	if err != nil {
		return nil, len(conducting), fmt.Errorf("%w: %v", ErrDecodeFailed, err)
	}
	return secret, len(conducting), nil
}

// Build fabricates an architecture for the design, protecting secret.
// Encoded designs use Shamir over GF(256) for structures up to 255
// devices and over GF(2^16) beyond that, supporting the paper's widest
// (low-β) structures up to 65,535 devices per copy.
func Build(design dse.Design, secret []byte, r *rng.RNG) (*Architecture, error) {
	return build(design, secret, nil, r)
}

// build is the shared fabrication path. A non-nil lv fabricates lv.Spares
// extra physical switches per copy and mounts a wear-leveling bank over
// the pool; nil fabricates the plain unleveled structure, bit-identical to
// every build before leveling existed.
func build(design dse.Design, secret []byte, lv *Leveling, r *rng.RNG) (*Architecture, error) {
	if len(secret) == 0 {
		return nil, errors.New("core: empty secret")
	}
	if design.N < 1 || design.K < 1 || design.Copies < 1 {
		return nil, fmt.Errorf("core: degenerate design %v", design)
	}
	if design.K > 1 && design.N > shamir16.MaxShares {
		return nil, fmt.Errorf("core: encoded structure size n=%d exceeds the GF(2^16) share space (%d)",
			design.N, shamir16.MaxShares)
	}
	// One (k, n) sharing serves every copy: copy c's switch i guards share
	// i. Reuse is safe — each copy exposes the same share set, so the
	// adversary's best case is still k−1 distinct shares — and it keeps
	// the share storage proportional to one structure (the paper's §4.3.2
	// area accounting).
	var dec decoder
	switch {
	case design.K == 1:
		dup := make([]byte, len(secret))
		copy(dup, secret)
		dec = replicaDecoder{secret: dup}
	case design.N <= shamir.MaxShares:
		shares, err := shamir.Split(secret, design.K, design.N, r)
		if err != nil {
			return nil, fmt.Errorf("core: encoding secret: %w", err)
		}
		dec = &narrowDecoder{shares: shares, k: design.K, got: make([]shamir.Share, 0, design.K)}
	default:
		shares, err := shamir16.Split(secret, design.K, design.N, r)
		if err != nil {
			return nil, fmt.Errorf("core: encoding secret: %w", err)
		}
		dec = &wideDecoder{shares: shares, k: design.K, got: make([]shamir16.Share, 0, design.K)}
	}
	a := &Architecture{design: design, copies: make([]*archCopy, design.Copies), r: r, leveling: lv}
	phys := design.N
	if lv != nil {
		phys += lv.Spares
	}
	for ci := range a.copies {
		c := &archCopy{switches: make([]*nems.Switch, phys), dec: dec, k: design.K}
		for i := range c.switches {
			c.switches[i] = nems.Fabricate(design.Spec.Dist, r)
		}
		if lv != nil {
			b, err := nems.NewBank(c.switches, design.N)
			if err != nil {
				return nil, fmt.Errorf("core: building bank: %w", err)
			}
			c.bank = b
		}
		a.copies[ci] = c
	}
	return a, nil
}

// Access performs one access under env. On success it returns the secret.
// ErrTransient means this access failed but the architecture may recover on
// retry (the next copy takes over); ErrExhausted means the secret is gone.
// It is equivalent to AccessContext(context.Background(), env).
func (a *Architecture) Access(env nems.Environment) ([]byte, error) {
	//lemonvet:allow ctxflow documented bit-identical fast path: Access is defined as AccessContext rooted at Background
	return a.AccessContext(context.Background(), env)
}

// AccessContext is Access with cancellation: if ctx is done before the
// hardware fires, no wearout is consumed and ctx.Err() is returned. Once
// the traversal starts it runs to completion — a physical access cannot be
// un-fired, so cancellation mid-flight would desynchronize the simulated
// wearout state from the counters. Safe for concurrent use.
func (a *Architecture) AccessContext(ctx context.Context, env nems.Environment) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.total++
	if a.leveling != nil {
		a.opsSince++
	}
	for a.cur < len(a.copies) {
		c := a.copies[a.cur]
		if !c.alive() {
			a.cur++
			continue
		}
		secret, conducting, decErr := c.access(env)
		if secret == nil {
			// The active copy could not serve this access: it degraded
			// below threshold mid-access or its share state failed to
			// decode. Unleveled wearout is monotone, so the next copy
			// takes over on retry; a leveled copy with spare potential
			// stays active — the next rotation moves spares under the
			// dead slots. Decode failure retires the copy either way:
			// the shares themselves are corrupt, and remapping switches
			// cannot repair share state.
			outcome := AccessTransient
			err := error(ErrTransient)
			if decErr != nil {
				outcome = AccessDecodeFailed
				err = decErr
			}
			a.emit(AccessEvent{Attempt: a.total, Copy: a.cur, Conducting: conducting, Outcome: outcome})
			if decErr != nil || !c.alive() {
				a.cur++
			}
			return nil, err
		}
		a.ok++
		a.emit(AccessEvent{Attempt: a.total, Copy: a.cur, Conducting: conducting, Outcome: AccessSuccess})
		return secret, nil
	}
	a.emit(AccessEvent{Attempt: a.total, Copy: len(a.copies), Outcome: AccessExhausted})
	return nil, ErrExhausted
}

func (a *Architecture) emit(ev AccessEvent) {
	if a.observer != nil {
		a.observer(ev)
	}
}

// Alive reports whether a future access could still succeed.
func (a *Architecture) Alive() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := a.cur; i < len(a.copies); i++ {
		if a.copies[i].alive() {
			return true
		}
	}
	return false
}

// Design returns the design the architecture was built from.
func (a *Architecture) Design() dse.Design { return a.design }

// Accesses returns (attempted, successful) access counts.
func (a *Architecture) Accesses() (total, successful uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total, a.ok
}

// CurrentCopy returns the index of the copy serving accesses.
func (a *Architecture) CurrentCopy() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cur
}

// TotalDevices returns the switch count of the fabricated hardware,
// including any wear-leveling spares.
func (a *Architecture) TotalDevices() int {
	n := a.design.N
	if a.leveling != nil {
		n += a.leveling.Spares
	}
	return n * a.design.Copies
}

// ExhaustedCopies returns how many copies have fully degraded.
func (a *Architecture) ExhaustedCopies() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cur
}
