package core

import (
	"context"
	"errors"
	"fmt"

	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
)

// Leveling configures the wear-leveled architecture variant: each copy is
// fabricated with Spares extra physical switches behind a WoLFRaM-style
// programmable remap table (arXiv:2010.02825), and the table is rotated
// onto the least-worn switches on a deterministic epoch schedule.
//
// The defense targets the adversary of arXiv:2508.16868: an attacker who
// can steer stress onto chosen share indices (hot/cold cycling, targeted
// actuation) to burn out specific switches. Unleveled, that concentrates
// the whole attack budget on k victims; leveled, rotation spreads it over
// primaries + spares, so the min-use guarantee degrades no faster than
// uniform wear allows.
type Leveling struct {
	// Spares is the number of extra physical switches fabricated per copy
	// beyond the design's n primaries. Zero is legal: the remap table then
	// only levels wear among the primaries.
	Spares int
	// Epoch is the rotation cadence in wear-consuming operations (accesses
	// and stress pulses): once at least Epoch ops have elapsed since the
	// last rotation — or sooner, if an in-service switch wears out — the
	// architecture reports a pending remap plan.
	Epoch uint64
}

// RemapPlan is one durable wear-leveling decision: retire the listed
// physical switches of the copy, then install the assignment. Callers
// (internal/registry) write the plan log-ahead and apply it through
// Retire and ApplyRemap; WAL recovery replays those records verbatim, so
// the live table and the recovered table are bit-identical.
type RemapPlan struct {
	Copy   int
	Assign []int
	Retire []int
}

// BuildLeveled fabricates the wear-leveled variant of Build: the same
// (design, secret) encoding, with lv.Spares extra switches per copy and a
// remap bank routing the design's n logical shares onto the pool. The
// fabrication is deterministic in (design, secret, seed, lv), so recovery
// can rebuild it and overlay a captured State bit-identically.
func BuildLeveled(design dse.Design, secret []byte, lv Leveling, r *rng.RNG) (*Architecture, error) {
	if lv.Spares < 0 {
		return nil, fmt.Errorf("core: negative spare count %d", lv.Spares)
	}
	if lv.Epoch < 1 {
		return nil, fmt.Errorf("core: remap epoch must be at least 1, got %d", lv.Epoch)
	}
	lvCopy := lv
	return build(design, secret, &lvCopy, r)
}

// Leveling returns the wear-leveling configuration and whether the
// architecture is the leveled variant.
func (a *Architecture) Leveling() (Leveling, bool) {
	if a.leveling == nil {
		return Leveling{}, false
	}
	return *a.leveling, true
}

// Stress serves adversarial wear traffic: it actuates the targeted logical
// share slots of the active copy pulses times each, under env, and reports
// how many actuations conducted. It never decodes — stress reveals nothing
// about the secret, it only consumes wearout — and it never advances the
// active copy, so a stressed-to-death copy is only skipped when a real
// access next observes it. Both variants accept stress: the unleveled
// architecture is the attack's victim, the leveled one its defense.
//
// Stress is a wear mutation and must be written log-ahead by durable
// callers, exactly like Access. It is equivalent to StressContext rooted
// at context.Background().
func (a *Architecture) Stress(env nems.Environment, indices []int, pulses int) (conducted int, err error) {
	//lemonvet:allow ctxflow documented bit-identical fast path: Stress is defined as StressContext rooted at Background
	return a.StressContext(context.Background(), env, indices, pulses)
}

// StressContext is Stress with cancellation: if ctx is done before the
// hardware fires, no wearout is consumed. Once the pulses start they run
// to completion — fired actuations cannot be un-fired.
func (a *Architecture) StressContext(ctx context.Context, env nems.Environment, indices []int, pulses int) (conducted int, err error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if pulses < 1 {
		return 0, fmt.Errorf("core: stress needs at least 1 pulse, got %d", pulses)
	}
	if len(indices) == 0 {
		return 0, errors.New("core: stress needs at least one target index")
	}
	for _, i := range indices {
		if i < 0 || i >= a.design.N {
			return 0, fmt.Errorf("core: stress index %d out of range [0, %d)", i, a.design.N)
		}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stressed += uint64(pulses)
	if a.leveling != nil {
		a.opsSince += uint64(pulses)
	}
	if a.cur >= len(a.copies) {
		return 0, ErrExhausted
	}
	c := a.copies[a.cur]
	for p := 0; p < pulses; p++ {
		for _, i := range indices {
			if c.actuate(i, env) == nil {
				conducted++
			}
		}
	}
	return conducted, nil
}

// Stressed returns the total stress pulses served over the architecture's
// lifetime (each pulse actuates every targeted index once).
func (a *Architecture) Stressed() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stressed
}

// PendingRemap reports the rotation the wear-leveling schedule calls for,
// if any: the plan is due when at least Epoch wear-consuming ops have
// elapsed since the last rotation, or immediately when an in-service
// switch has worn out, and it is only reported when applying it would
// change state (a different assignment, or switches to retire). The plan
// itself is nems.Bank.PlanRemap — a pure function of observable wear — so
// equal histories yield equal plans.
//
// PendingRemap only inspects; durable callers append the plan to the log
// first and then apply it via Retire + ApplyRemap.
func (a *Architecture) PendingRemap() (RemapPlan, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.leveling == nil || a.cur >= len(a.copies) {
		return RemapPlan{}, false
	}
	b := a.copies[a.cur].bank
	assign, retire := b.PlanRemap()
	repair := len(retire) > 0
	for _, p := range b.Assign() {
		if !b.Retired(p) {
			continue
		}
		repair = true
	}
	if !repair && a.opsSince < a.leveling.Epoch {
		return RemapPlan{}, false
	}
	if len(retire) == 0 && equalInts(assign, b.Assign()) {
		// Nothing would change (e.g. the current assignment is already the
		// least-worn set). Leave the epoch counter running; the next op
		// re-evaluates, and the plan is emitted as soon as wear diverges.
		return RemapPlan{}, false
	}
	return RemapPlan{Copy: a.cur, Assign: assign, Retire: retire}, true
}

// Retire permanently removes a physical switch of the given copy from
// wear-leveling service. It is idempotent, and must be written log-ahead
// by durable callers: retirement changes which switches future rotations
// may use, so recovery has to replay it in log order.
func (a *Architecture) Retire(copy, physical int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.leveling == nil {
		return errors.New("core: retire on an unleveled architecture")
	}
	if copy < 0 || copy >= len(a.copies) {
		return fmt.Errorf("core: retire: copy %d out of range [0, %d)", copy, len(a.copies))
	}
	return a.copies[copy].bank.Retire(physical)
}

// ApplyRemap installs a remap assignment on the given copy and resets the
// epoch counter. The assignment is validated for shape (width, range,
// distinctness) but not for the health of its targets — recovery must be
// able to reinstall any table that was ever durably recorded. Durable
// callers write the plan log-ahead before applying it.
func (a *Architecture) ApplyRemap(copy int, assign []int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.leveling == nil {
		return errors.New("core: remap on an unleveled architecture")
	}
	if copy < 0 || copy >= len(a.copies) {
		return fmt.Errorf("core: remap: copy %d out of range [0, %d)", copy, len(a.copies))
	}
	if err := a.copies[copy].bank.SetAssign(assign); err != nil {
		return err
	}
	a.opsSince = 0
	a.remaps++
	return nil
}

// Remaps returns how many rotations have been applied over the
// architecture's lifetime.
func (a *Architecture) Remaps() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.remaps
}

// WearSkew reports the wear spread (max − min accumulated cycles) across
// the serving copy's switch pool — the gauge that makes a targeted-wearout
// attack visible. An unleveled architecture reports the raw spread of the
// active copy; a leveled one reports the spread over its non-retired pool.
// When every copy is exhausted the last copy's spread is reported.
func (a *Architecture) WearSkew() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	ci := a.cur
	if ci >= len(a.copies) {
		ci = len(a.copies) - 1
	}
	c := a.copies[ci]
	if c.bank != nil {
		return c.bank.WearSkew()
	}
	return nems.WearSkewOf(c.switches)
}

// SparesRemaining counts usable spare switches across every copy — the
// headroom left before the leveled architecture degrades like an
// unleveled one. Always zero for the unleveled variant.
func (a *Architecture) SparesRemaining() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, c := range a.copies {
		if c.bank != nil {
			n += c.bank.SparesRemaining()
		}
	}
	return n
}

// equalInts reports whether two int slices are element-wise equal.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
