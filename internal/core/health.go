package core

import (
	"lemonade/internal/mathx"
	"lemonade/internal/reliability"
)

// Health is a self-assessment of a limited-use architecture: how much
// usage remains before the secret becomes unreachable. It powers
// migrate-before-death planning (§4.1.5) — the user wants to re-encrypt
// onto the next module *before* the current one dies, not after.
type Health struct {
	// FreshCopies is the number of untouched copies behind the active one.
	FreshCopies int
	// ActiveCopyWorking is the number of conducting switches in the
	// active copy (k of them are needed per access).
	ActiveCopyWorking int
	// ActiveCopyAccesses is how many accesses the active copy has served.
	ActiveCopyAccesses int
	// EstRemainingAccesses is the analytic expectation of remaining
	// successful accesses across the active and fresh copies.
	EstRemainingAccesses float64
	// MigrateAdvised is set when the active copy has consumed most of its
	// expected life — the §4.1.5 moment to change passcodes.
	MigrateAdvised bool
}

// Health reports the architecture's remaining capacity. The estimate uses
// the design's analytic access-count distribution: the active copy
// contributes its conditional expected remaining accesses given that it
// has already served its count; each fresh copy contributes the full
// per-copy mean.
func (a *Architecture) Health() Health {
	a.mu.Lock()
	defer a.mu.Unlock()
	h := Health{}
	if a.cur >= len(a.copies) {
		return h
	}
	h.FreshCopies = len(a.copies) - a.cur - 1
	active := a.copies[a.cur]
	for _, sw := range active.switches {
		if sw.Working() {
			h.ActiveCopyWorking++
		}
	}
	// The active copy's served count: every copy before cur is exhausted;
	// attribute the remainder of successful accesses to the active copy.
	// (Switch actuation counts give the exact number.)
	if len(active.switches) > 0 {
		h.ActiveCopyAccesses = int(active.switches[0].Actuations())
	}

	m := reliability.Model{Dist: a.design.Spec.Dist, N: a.design.N, K: a.design.K}
	perCopyMean, _ := m.AccessMoments()
	h.EstRemainingAccesses = condRemaining(m, h.ActiveCopyAccesses) + float64(h.FreshCopies)*perCopyMean
	// advise migration when under 20% of the copy's expected life remains
	h.MigrateAdvised = condRemaining(m, h.ActiveCopyAccesses) < 0.2*perCopyMean && h.FreshCopies > 0
	return h
}

// condRemaining returns E[T − served | T ≥ served] for the copy's access
// count T, via the survival function: Σ_{t>served} P(T ≥ t)/P(T ≥ served).
func condRemaining(m reliability.Model, served int) float64 {
	base := m.WorksThrough(served)
	if base <= 0 {
		return 0
	}
	var sum mathx.KahanSum
	for t := served + 1; ; t++ {
		w := m.WorksThrough(t)
		if w < 1e-12*base {
			break
		}
		sum.Add(w)
		if t > served+int(8*m.Dist.Alpha)+64 {
			break
		}
	}
	return sum.Sum() / base
}
