package core

import (
	"bytes"
	"testing"

	"lemonade/internal/nems"
	"lemonade/internal/rng"
)

func TestNoisyArchitectureCleanFaults(t *testing.T) {
	// With garbageProb=0 the noisy architecture behaves like the plain one.
	design := smallDesign(t, 40, 0.10)
	r := rng.New(11)
	secret := []byte("noisy secret")
	a, err := BuildNoisy(design, secret, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	succ := 0
	for i := 0; i < 40; i++ {
		got, err := a.Access(nems.RoomTemp)
		if err == nil {
			if !bytes.Equal(got, secret) {
				t.Fatal("wrong secret")
			}
			succ++
		}
	}
	if succ < 36 {
		t.Errorf("only %d/40 accesses succeeded", succ)
	}
}

func TestNoisyArchitectureCorrectsGarbage(t *testing.T) {
	// With every worn switch conducting garbage, the error-correcting
	// decode must still return the right secret for every successful
	// access — never a silently wrong one.
	design := smallDesign(t, 40, 0.10)
	r := rng.New(22)
	secret := []byte("garbage-resistant")
	a, err := BuildNoisy(design, secret, 1.0, r)
	if err != nil {
		t.Fatal(err)
	}
	succ, wrong := 0, 0
	for a.Alive() {
		got, err := a.Access(nems.RoomTemp)
		if err != nil {
			continue
		}
		succ++
		if !bytes.Equal(got, secret) {
			wrong++
		}
	}
	if wrong > 0 {
		t.Errorf("%d of %d accesses returned a WRONG secret — error correction failed", wrong, succ)
	}
	if succ < design.GuaranteedMinAccesses()/2 {
		t.Errorf("garbage faults collapsed usable accesses to %d (designed %d)",
			succ, design.GuaranteedMinAccesses())
	}
	total, ok := a.Accesses()
	if ok != uint64(succ) || total < ok {
		t.Error("access counters inconsistent")
	}
}

func TestPlainInterpolationIsFooledByGarbage(t *testing.T) {
	// The motivation test: naive Lagrange interpolation over k shares
	// with one garbage share yields a *wrong* byte with no error — the
	// silent failure BuildNoisy exists to prevent.
	xs := []byte{1, 2, 3, 4, 5}
	// shares of secret byte 0x42 under the polynomial 0x42 + 7x
	ys := make([]byte, len(xs))
	for i, x := range xs {
		ys[i] = 0x42 ^ gf256Mul(7, x)
	}
	ys[0] ^= 0xFF // garbage fault
	got, err := interpolateNaive(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got == 0x42 {
		t.Error("expected naive interpolation to be fooled (it picked the corrupted share)")
	}
}

// gf256Mul avoids importing gf256 in the test twice; Russian-peasant
// multiply with the package polynomial.
func gf256Mul(a, b byte) byte {
	var p byte
	aa, bb := uint16(a), uint16(b)
	for i := 0; i < 8; i++ {
		if bb&1 != 0 {
			p ^= byte(aa)
		}
		bb >>= 1
		aa <<= 1
		if aa&0x100 != 0 {
			aa ^= 0x11D
		}
	}
	return p
}

func TestBuildNoisyValidation(t *testing.T) {
	design := smallDesign(t, 20, 0.10)
	r := rng.New(33)
	if _, err := BuildNoisy(design, nil, 0, r); err == nil {
		t.Error("empty secret should be rejected")
	}
	if _, err := BuildNoisy(design, []byte("x"), -0.1, r); err == nil {
		t.Error("negative garbageProb should be rejected")
	}
	if _, err := BuildNoisy(design, []byte("x"), 1.1, r); err == nil {
		t.Error("garbageProb > 1 should be rejected")
	}
	unencoded := design
	unencoded.K = 1
	if _, err := BuildNoisy(unencoded, []byte("x"), 0, r); err == nil {
		t.Error("k=1 design should be rejected (no parity to correct with)")
	}
	wide := design
	wide.N = 300
	if _, err := BuildNoisy(wide, []byte("x"), 0, r); err == nil {
		t.Error("n > 255 should be rejected for the GF(256) noisy path")
	}
}
