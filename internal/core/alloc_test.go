package core

import (
	"testing"

	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

// buildLongLived fabricates an encoded architecture whose switches last
// far beyond the accesses a test performs (α in the millions), so the
// steady-state cost of Access can be measured without the copy dying.
func buildLongLived(t *testing.T, n, k int, secret []byte) *Architecture {
	t.Helper()
	design := dse.Design{
		Spec:   dse.Spec{Dist: weibull.MustNew(5e6, 8)},
		T:      1000,
		UpperT: 1000,
		N:      n,
		K:      k,
		Copies: 1,
	}
	a, err := Build(design, secret, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestAccessAllocsSteadyState pins the access path's allocation budget:
// after warmup, one access allocates only the returned secret (the
// conducting scratch, share selection, and Shamir reconstruction all run
// on reused or pooled buffers).
func TestAccessAllocsSteadyState(t *testing.T) {
	secret := []byte("the paper's limited-use secret")
	for _, tc := range []struct {
		name string
		n, k int
	}{
		{"replica", 8, 1},
		{"gf256", 16, 4},
		{"gf16", 300, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := buildLongLived(t, tc.n, tc.k, secret)
			env := nems.Environment{}
			if _, err := a.Access(env); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(50, func() {
				if _, err := a.Access(env); err != nil {
					panic(err)
				}
			})
			// The returned secret is one allocation; leave headroom for
			// runtime bookkeeping but forbid per-switch or per-share churn.
			if allocs > 2 {
				t.Fatalf("Access allocates %.1f times per call, want <= 2 (secret only)", allocs)
			}
		})
	}
}
