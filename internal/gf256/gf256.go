// Package gf256 implements arithmetic in the finite field GF(2^8) with the
// primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the field used by
// the Shamir secret-sharing and Reed-Solomon packages.
//
// Multiplication and division go through exp/log tables built at package
// init; all operations are constant-time-ish table lookups (we make no
// side-channel claims — this is a simulator, not production crypto).
package gf256

import "fmt"

// Poly is the primitive reduction polynomial used by this field.
const Poly = 0x11D

var (
	expTable [512]byte // doubled so Mul can skip a mod 255
	logTable [256]byte
	// mulTable[c] is the full multiplication row of the constant c:
	// mulTable[c][a] = c·a. 64 KiB once at init buys the slice kernels
	// (MulSliceAdd and friends) a single lookup per byte instead of two
	// log lookups plus an exp lookup.
	mulTable [256][256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
	for c := 1; c < 256; c++ {
		row := &mulTable[c]
		lc := int(logTable[c])
		for a := 1; a < 256; a++ {
			row[a] = expTable[lc+int(logTable[a])]
		}
	}
}

// Add returns a + b in GF(2^8) (XOR). Subtraction is identical.
func Add(a, b byte) byte { return a ^ b }

// Mul returns a·b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a/b in GF(2^8). It panics on division by zero.
func Div(a, b byte) byte {
	if b == 0 {
		//lemonvet:allow panic division by zero is a caller bug, like integer /0
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a. It panics for a == 0.
func Inv(a byte) byte {
	if a == 0 {
		//lemonvet:allow panic inverse of zero is a caller bug, like integer /0
		panic("gf256: zero has no inverse")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns the generator raised to the i-th power, i.e. 2^i in the field.
func Exp(i int) byte {
	i %= 255
	if i < 0 {
		i += 255
	}
	return expTable[i]
}

// Log returns the discrete log base the generator. It panics for a == 0.
func Log(a byte) int {
	if a == 0 {
		//lemonvet:allow panic log of zero is a caller bug; Log is documented for nonzero elements
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// Pow returns a^n in the field, with a^0 = 1 (including 0^0 = 1 by
// convention, matching polynomial-evaluation usage).
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (int(logTable[a]) * n) % 255
	if l < 0 {
		l += 255
	}
	return expTable[l]
}

// --- Polynomials --------------------------------------------------------------

// Polynomial is a polynomial over GF(2^8) with coefficients in ascending
// degree order: p[0] + p[1]x + p[2]x² + ...
type Polynomial []byte

// Eval evaluates the polynomial at x by Horner's rule.
func (p Polynomial) Eval(x byte) byte {
	var y byte
	for i := len(p) - 1; i >= 0; i-- {
		y = Mul(y, x) ^ p[i]
	}
	return y
}

// Degree returns the degree of the polynomial, or -1 for the zero polynomial.
func (p Polynomial) Degree() int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return -1
}

// checkDistinct validates the shared Interpolate/LagrangeCoeffs
// preconditions: pairLen values paired with the xs, at least one point,
// and all xs distinct. The pairwise scan is O(k²) but allocation-free;
// k ≤ 255 in this field, so it beats building a seen-set.
func checkDistinct(xs []byte, pairLen int) error {
	if len(xs) != pairLen {
		return fmt.Errorf("gf256: mismatched point slices (%d vs %d)", len(xs), pairLen)
	}
	if len(xs) == 0 {
		return fmt.Errorf("gf256: no points to interpolate")
	}
	for i := 0; i < len(xs); i++ {
		for j := i + 1; j < len(xs); j++ {
			if xs[i] == xs[j] {
				return fmt.Errorf("gf256: duplicate x coordinate %d", xs[i])
			}
		}
	}
	return nil
}

// Interpolate performs Lagrange interpolation over the points (xs[i], ys[i])
// and returns the value of the unique degree-(k-1) polynomial at x. The xs
// must be distinct; it returns an error otherwise. The Lagrange basis is
// folded directly into the accumulator — no intermediate basis polynomials
// and no allocations on the success path.
func Interpolate(xs, ys []byte, x byte) (byte, error) {
	if err := checkDistinct(xs, len(ys)); err != nil {
		return 0, err
	}
	var acc byte
	for i := range xs {
		num, den := byte(1), byte(1)
		for j := range xs {
			if j == i {
				continue
			}
			num = Mul(num, x^xs[j])
			den = Mul(den, xs[i]^xs[j])
		}
		acc ^= Mul(ys[i], Div(num, den))
	}
	return acc, nil
}
