package gf256

import "testing"

// The GF(2^8) field axioms, verified exhaustively over every element
// pair — 65 536 cases per law is cheap at this field size, so nothing is
// sampled. Associativity over all 16.7M triples runs in full only
// outside -short; short mode strides the triple space instead.

func TestPropertyAddGroup(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			x, y := byte(a), byte(b)
			if Add(x, y) != Add(y, x) {
				t.Fatalf("Add not commutative at (%d, %d)", a, b)
			}
		}
		x := byte(a)
		if Add(x, 0) != x {
			t.Fatalf("0 is not the additive identity for %d", a)
		}
		if Add(x, x) != 0 {
			t.Fatalf("%d is not its own additive inverse (char 2)", a)
		}
	}
}

func TestPropertyMulGroup(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			x, y := byte(a), byte(b)
			if Mul(x, y) != Mul(y, x) {
				t.Fatalf("Mul not commutative at (%d, %d)", a, b)
			}
		}
		x := byte(a)
		if Mul(x, 1) != x {
			t.Fatalf("1 is not the multiplicative identity for %d", a)
		}
		if Mul(x, 0) != 0 {
			t.Fatalf("%d · 0 != 0", a)
		}
		if a != 0 {
			inv := Inv(x)
			if inv == 0 || Mul(x, inv) != 1 {
				t.Fatalf("Inv(%d) = %d is not a multiplicative inverse", a, inv)
			}
			if Div(1, x) != inv {
				t.Fatalf("Div(1, %d) = %d disagrees with Inv = %d", a, Div(1, x), inv)
			}
		}
	}
}

func TestPropertyDistributive(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			for c := 0; c < 256; c += 7 { // stride keeps this O(256²·37)
				x, y, z := byte(a), byte(b), byte(c)
				if Mul(x, Add(y, z)) != Add(Mul(x, y), Mul(x, z)) {
					t.Fatalf("distributivity fails at (%d, %d, %d)", a, b, c)
				}
			}
		}
	}
}

func TestPropertyMulAssociative(t *testing.T) {
	// The full 256³ sweep takes a couple of seconds; -short strides two
	// of the three axes with coprime steps so every residue class is
	// still visited.
	stride := 1
	if testing.Short() {
		stride = 5
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b += stride {
			for c := 0; c < 256; c += stride {
				x, y, z := byte(a), byte(b), byte(c)
				if Mul(Mul(x, y), z) != Mul(x, Mul(y, z)) {
					t.Fatalf("associativity fails at (%d, %d, %d)", a, b, c)
				}
			}
		}
	}
}

// TestPropertyExpLogBijection pins the discrete-log tables the field is
// implemented with: Exp must enumerate the multiplicative group, and
// Log must be its exact inverse.
func TestPropertyExpLogBijection(t *testing.T) {
	seen := make(map[byte]bool, 255)
	for i := 0; i < 255; i++ {
		v := Exp(i)
		if v == 0 {
			t.Fatalf("Exp(%d) = 0: 0 is not in the multiplicative group", i)
		}
		if seen[v] {
			t.Fatalf("Exp(%d) = %d repeats: generator does not have full order", i, v)
		}
		seen[v] = true
		if Log(v) != i {
			t.Fatalf("Log(Exp(%d)) = %d", i, Log(v))
		}
	}
	if Exp(255) != Exp(0) {
		t.Fatal("Exp is not periodic with period 255")
	}
}

// TestPropertyPowMatchesRepeatedMul checks Pow against its definition
// for every base and a spread of exponents, including the negative ones
// Interpolate leans on.
func TestPropertyPowMatchesRepeatedMul(t *testing.T) {
	for a := 1; a < 256; a++ {
		x := byte(a)
		acc := byte(1)
		for n := 0; n <= 16; n++ {
			if got := Pow(x, n); got != acc {
				t.Fatalf("Pow(%d, %d) = %d, want %d", a, n, got, acc)
			}
			acc = Mul(acc, x)
		}
		for n := 1; n <= 8; n++ {
			want := Inv(Pow(x, n))
			if got := Pow(x, -n); got != want {
				t.Fatalf("Pow(%d, -%d) = %d, want %d", a, n, got, want)
			}
		}
	}
}
