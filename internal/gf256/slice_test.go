package gf256

import (
	"bytes"
	"testing"
)

// The slice kernels claim bit-identity with the scalar field ops. The
// field has only 256 elements, so that claim is checked exhaustively:
// every (c, byte) pair for the multiply kernels, and every alignment ×
// length combination in 0..64 for the word-batched XOR path.

// patternBytes fills a deterministic, alignment-revealing byte pattern
// without pulling in an RNG: a full residue sweep xored with the index.
func patternBytes(n int, salt byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*151+13) ^ salt
	}
	return out
}

func TestMulSliceAddExhaustive(t *testing.T) {
	// One slice holding every field element, multiplied by every constant:
	// all 65 536 (c, a) pairs hit the kernel path.
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]byte, 256)
	want := make([]byte, 256)
	for c := 0; c < 256; c++ {
		copy(dst, patternBytes(256, byte(c)))
		copy(want, dst)
		for i := range want {
			want[i] ^= Mul(byte(c), src[i])
		}
		MulSliceAdd(dst, src, byte(c))
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulSliceAdd c=%d diverges from scalar Mul", c)
		}
	}
}

func TestMulSliceExhaustive(t *testing.T) {
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	dst := make([]byte, 256)
	want := make([]byte, 256)
	for c := 0; c < 256; c++ {
		copy(dst, patternBytes(256, byte(c)))
		for i := range want {
			want[i] = Mul(byte(c), src[i])
		}
		MulSlice(dst, src, byte(c))
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulSlice c=%d diverges from scalar Mul", c)
		}
	}
}

// TestAddSliceAlignments drives the 8-byte word batching across every
// (offset, length) pair with offset in 0..7 and length in 0..64, so the
// word loop, the byte tail, and their boundary are all exercised at every
// alignment of dst and src relative to the word size.
func TestAddSliceAlignments(t *testing.T) {
	const maxLen = 64
	backingDst := patternBytes(maxLen+16, 0xA5)
	backingSrc := patternBytes(maxLen+16, 0x3C)
	for dOff := 0; dOff < 8; dOff++ {
		for sOff := 0; sOff < 8; sOff++ {
			for n := 0; n <= maxLen; n++ {
				dst := append([]byte(nil), backingDst[dOff:dOff+n]...)
				src := backingSrc[sOff : sOff+n]
				want := make([]byte, n)
				for i := range want {
					want[i] = dst[i] ^ src[i]
				}
				AddSlice(dst, src)
				if !bytes.Equal(dst, want) {
					t.Fatalf("AddSlice diverges at dOff=%d sOff=%d n=%d", dOff, sOff, n)
				}
			}
		}
	}
}

// TestMulSliceAddLengths covers the scalar row-lookup path (and the c=1
// word path) over all lengths 0..64 for a spread of constants.
func TestMulSliceAddLengths(t *testing.T) {
	for _, c := range []byte{0, 1, 2, 3, 29, 127, 128, 255} {
		for n := 0; n <= 64; n++ {
			src := patternBytes(n, c)
			dst := patternBytes(n, ^c)
			want := make([]byte, n)
			for i := range want {
				want[i] = dst[i] ^ Mul(c, src[i])
			}
			MulSliceAdd(dst, src, c)
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulSliceAdd diverges at c=%d n=%d", c, n)
			}
		}
	}
}

func TestSliceKernelsInPlaceAliasing(t *testing.T) {
	// dst == src is part of the documented contract.
	for _, c := range []byte{0, 1, 7, 255} {
		s := patternBytes(33, c)
		want := make([]byte, len(s))
		for i := range want {
			want[i] = s[i] ^ Mul(c, s[i])
		}
		MulSliceAdd(s, s, c)
		if !bytes.Equal(s, want) {
			t.Fatalf("in-place MulSliceAdd diverges at c=%d", c)
		}

		s = patternBytes(33, c)
		for i := range want {
			want[i] = Mul(c, s[i])
		}
		MulSlice(s, s, c)
		if !bytes.Equal(s, want) {
			t.Fatalf("in-place MulSlice diverges at c=%d", c)
		}
	}
	s := patternBytes(40, 9)
	AddSlice(s, s)
	for i, v := range s {
		if v != 0 {
			t.Fatalf("in-place AddSlice should zero; byte %d = %d", i, v)
		}
	}
}

func TestSliceKernelsLengthMismatchPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"AddSlice", func() { AddSlice(make([]byte, 3), make([]byte, 4)) }},
		{"MulSliceAdd", func() { MulSliceAdd(make([]byte, 3), make([]byte, 4), 5) }},
		{"MulSlice", func() { MulSlice(make([]byte, 3), make([]byte, 4), 5) }},
		{"EvalManyInto", func() { Polynomial{1}.EvalManyInto(make([]byte, 3), make([]byte, 4)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic on length mismatch", tc.name)
				}
			}()
			tc.f()
		})
	}
}

// TestEvalIntoMatchesHorner: the columnar power-sum accumulation must
// agree with per-byte Horner evaluation for every evaluation point.
func TestEvalIntoMatchesHorner(t *testing.T) {
	const width, degree = 19, 5
	rows := make([][]byte, degree)
	for j := range rows {
		rows[j] = patternBytes(width, byte(3*j+1))
	}
	dst := make([]byte, width)
	for x := 0; x < 256; x++ {
		EvalInto(dst, rows, byte(x))
		for b := 0; b < width; b++ {
			p := make(Polynomial, degree)
			for j := range rows {
				p[j] = rows[j][b]
			}
			if want := p.Eval(byte(x)); dst[b] != want {
				t.Fatalf("EvalInto(x=%d) byte %d = %d, want Horner %d", x, b, dst[b], want)
			}
		}
	}
	EvalInto(dst, nil, 7)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("EvalInto with no rows should zero dst; byte %d = %d", i, v)
		}
	}
}

func TestEvalManyIntoMatchesEval(t *testing.T) {
	p := Polynomial(patternBytes(9, 0x5A))
	xs := make([]byte, 256)
	for i := range xs {
		xs[i] = byte(i)
	}
	dst := make([]byte, 256)
	p.EvalManyInto(dst, xs)
	for i, x := range xs {
		if want := p.Eval(x); dst[i] != want {
			t.Fatalf("EvalManyInto at x=%d: got %d, want %d", x, dst[i], want)
		}
	}
}

// TestLagrangeCoeffsMatchInterpolate: Σ ys[i]·L_i(x) must equal the
// scalar Interpolate for every evaluation point, including the nodes
// themselves (where the basis collapses to a unit vector).
func TestLagrangeCoeffsMatchInterpolate(t *testing.T) {
	xs := []byte{1, 2, 3, 7, 90, 255}
	ys := patternBytes(len(xs), 0x1F)
	coeffs := make([]byte, len(xs))
	for x := 0; x < 256; x++ {
		if err := LagrangeCoeffs(xs, byte(x), coeffs); err != nil {
			t.Fatalf("LagrangeCoeffs(x=%d): %v", x, err)
		}
		var got byte
		for i := range xs {
			got ^= Mul(ys[i], coeffs[i])
		}
		want, err := Interpolate(xs, ys, byte(x))
		if err != nil {
			t.Fatalf("Interpolate(x=%d): %v", x, err)
		}
		if got != want {
			t.Fatalf("coefficient reconstruction at x=%d: got %d, want %d", x, got, want)
		}
	}
	// At a node the basis must be exactly the unit vector for that node.
	if err := LagrangeCoeffs(xs, xs[2], coeffs); err != nil {
		t.Fatal(err)
	}
	for i, c := range coeffs {
		want := byte(0)
		if i == 2 {
			want = 1
		}
		if c != want {
			t.Fatalf("basis at node: coeffs[%d] = %d, want %d", i, c, want)
		}
	}
}

func TestLagrangeCoeffsErrors(t *testing.T) {
	if err := LagrangeCoeffs([]byte{1, 2, 1}, 0, make([]byte, 3)); err == nil {
		t.Fatal("duplicate xs not rejected")
	}
	if err := LagrangeCoeffs([]byte{1, 2}, 0, make([]byte, 3)); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	if err := LagrangeCoeffs(nil, 0, nil); err == nil {
		t.Fatal("empty point set not rejected")
	}
}

// The kernels and the reworked Interpolate promise zero allocations on
// the success path — the property the codec layer's alloc gates build on.
func TestSliceKernelsNoAllocs(t *testing.T) {
	dst := patternBytes(1024, 1)
	src := patternBytes(1024, 2)
	xs := []byte{1, 2, 3, 4, 5}
	ys := []byte{9, 8, 7, 6, 5}
	coeffs := make([]byte, 5)
	rows := [][]byte{patternBytes(64, 1), patternBytes(64, 2), patternBytes(64, 3)}
	rowDst := make([]byte, 64)
	for name, f := range map[string]func(){
		"AddSlice":       func() { AddSlice(dst, src) },
		"MulSliceAdd":    func() { MulSliceAdd(dst, src, 29) },
		"MulSlice":       func() { MulSlice(dst, src, 29) },
		"EvalInto":       func() { EvalInto(rowDst, rows, 17) },
		"LagrangeCoeffs": func() { _ = LagrangeCoeffs(xs, 0, coeffs) },
		"Interpolate":    func() { _, _ = Interpolate(xs, ys, 0) },
	} {
		if n := testing.AllocsPerRun(100, f); n != 0 {
			t.Errorf("%s allocates %v times per call, want 0", name, n)
		}
	}
}
