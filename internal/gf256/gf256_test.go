package gf256

import (
	"testing"
	"testing/quick"
)

func TestMulIdentityAndZero(t *testing.T) {
	for a := 0; a < 256; a++ {
		if Mul(byte(a), 1) != byte(a) {
			t.Fatalf("a*1 != a for a=%d", a)
		}
		if Mul(byte(a), 0) != 0 {
			t.Fatalf("a*0 != 0 for a=%d", a)
		}
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributive(t *testing.T) {
	f := func(a, b, c byte) bool { return Mul(a, b^c) == Mul(a, b)^Mul(a, c) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvAndDiv(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
		if Div(byte(a), byte(a)) != 1 {
			t.Fatalf("a/a != 1 for a=%d", a)
		}
	}
	if Div(0, 5) != 0 {
		t.Error("0/b should be 0")
	}
}

func TestDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Div by zero should panic")
		}
	}()
	Div(3, 0)
}

func TestInvPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) should panic")
		}
	}()
	Inv(0)
}

func TestLogPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Log(0) should panic")
		}
	}()
	Log(0)
}

func TestMulByBruteForce(t *testing.T) {
	// Carry-less multiply then reduce by the field polynomial: the ground
	// truth for the table-driven Mul.
	ref := func(a, b byte) byte {
		var p uint16
		aa, bb := uint16(a), uint16(b)
		for i := 0; i < 8; i++ {
			if bb&1 != 0 {
				p ^= aa
			}
			bb >>= 1
			aa <<= 1
			if aa&0x100 != 0 {
				aa ^= Poly
			}
		}
		return byte(p)
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if Mul(byte(a), byte(b)) != ref(byte(a), byte(b)) {
				t.Fatalf("Mul(%d,%d) mismatch with reference", a, b)
			}
		}
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%d)) != %d", a, a)
		}
	}
	if Exp(255) != Exp(0) {
		t.Error("Exp should be periodic with period 255")
	}
	if Exp(-1) != Exp(254) {
		t.Error("negative Exp index mishandled")
	}
}

func TestPow(t *testing.T) {
	if Pow(0, 0) != 1 {
		t.Error("0^0 convention should be 1")
	}
	if Pow(0, 5) != 0 {
		t.Error("0^5 should be 0")
	}
	for a := 1; a < 20; a++ {
		want := byte(1)
		for n := 0; n < 10; n++ {
			if got := Pow(byte(a), n); got != want {
				t.Fatalf("Pow(%d,%d) = %d, want %d", a, n, got, want)
			}
			want = Mul(want, byte(a))
		}
	}
}

func TestPolynomialEval(t *testing.T) {
	// p(x) = 5 + 3x + x^2 over GF(256)
	p := Polynomial{5, 3, 1}
	if got := p.Eval(0); got != 5 {
		t.Errorf("p(0) = %d, want 5", got)
	}
	x := byte(7)
	want := byte(5) ^ Mul(3, x) ^ Mul(x, x)
	if got := p.Eval(x); got != want {
		t.Errorf("p(7) = %d, want %d", got, want)
	}
}

func TestPolynomialDegree(t *testing.T) {
	if (Polynomial{0, 0, 0}).Degree() != -1 {
		t.Error("zero polynomial degree should be -1")
	}
	if (Polynomial{1, 0, 4, 0}).Degree() != 2 {
		t.Error("trailing zeros should not raise the degree")
	}
	if (Polynomial{}).Degree() != -1 {
		t.Error("empty polynomial degree should be -1")
	}
}

func TestInterpolateRecoversPolynomial(t *testing.T) {
	p := Polynomial{42, 17, 99, 3} // degree 3
	xs := []byte{1, 2, 3, 4}
	ys := make([]byte, len(xs))
	for i, x := range xs {
		ys[i] = p.Eval(x)
	}
	// evaluate at a fresh point through interpolation
	for _, at := range []byte{0, 5, 77, 200} {
		got, err := Interpolate(xs, ys, at)
		if err != nil {
			t.Fatal(err)
		}
		if got != p.Eval(at) {
			t.Errorf("interpolated p(%d) = %d, want %d", at, got, p.Eval(at))
		}
	}
}

func TestInterpolateErrors(t *testing.T) {
	if _, err := Interpolate([]byte{1, 2}, []byte{3}, 0); err == nil {
		t.Error("mismatched slices should error")
	}
	if _, err := Interpolate(nil, nil, 0); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Interpolate([]byte{1, 1}, []byte{2, 3}, 0); err == nil {
		t.Error("duplicate x should error")
	}
}

func TestInterpolateProperty(t *testing.T) {
	// For random degree<=3 polynomials and 4 distinct points, interpolation
	// at any x equals direct evaluation.
	f := func(c0, c1, c2, c3, at byte) bool {
		p := Polynomial{c0, c1, c2, c3}
		xs := []byte{10, 20, 30, 40}
		ys := make([]byte, 4)
		for i, x := range xs {
			ys[i] = p.Eval(x)
		}
		got, err := Interpolate(xs, ys, at)
		return err == nil && got == p.Eval(at)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
