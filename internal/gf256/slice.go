package gf256

import "encoding/binary"

// This file is the slice-at-a-time kernel layer: the same field arithmetic
// as Mul/Add, applied to whole []byte operands through precomputed
// multiplication rows. Field operations are exact (no rounding), so any
// algebraic regrouping of the scalar loops is bit-identical to the scalar
// path — the property the exhaustive kernel tests in slice_test.go and the
// lemonbench checksum gates both pin.
//
// Aliasing contract: dst may be the same slice as src (in-place update),
// but must not otherwise overlap it. None of the kernels allocate.

// AddSlice adds src into dst elementwise: dst[i] ^= src[i]. Addition in
// GF(2^8) is XOR, so the kernel batches 8 bytes per step through 64-bit
// words — bitwise XOR is endianness- and grouping-independent, so the
// word path is bit-identical to the byte path.
func AddSlice(dst, src []byte) {
	if len(dst) != len(src) {
		//lemonvet:allow panic mismatched kernel operand lengths are a caller bug, like out-of-range indexing
		panic("gf256: AddSlice length mismatch")
	}
	n := len(dst) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for i := n; i < len(dst); i++ {
		dst[i] ^= src[i]
	}
}

// MulSliceAdd multiply-accumulates a constant into dst: dst[i] ^= c·src[i]
// for every i. c = 0 is a no-op; c = 1 degenerates to the word-batched
// AddSlice; every other constant walks its precomputed multiplication row
// (one table lookup per byte).
func MulSliceAdd(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		//lemonvet:allow panic mismatched kernel operand lengths are a caller bug, like out-of-range indexing
		panic("gf256: MulSliceAdd length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		AddSlice(dst, src)
		return
	}
	row := &mulTable[c]
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

// MulSlice sets dst[i] = c·src[i] for every i. c = 0 zeroes dst; c = 1
// copies.
func MulSlice(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		//lemonvet:allow panic mismatched kernel operand lengths are a caller bug, like out-of-range indexing
		panic("gf256: MulSlice length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	row := &mulTable[c]
	for i, s := range src {
		dst[i] = row[s]
	}
}

// EvalInto evaluates, column by column, the polynomial whose degree-j
// coefficient vector is rows[j], at the point x:
//
//	dst[b] = rows[0][b] ⊕ rows[1][b]·x ⊕ rows[2][b]·x² ⊕ ...
//
// This is the columnar form of Polynomial.Eval — Shamir's Split is exactly
// this with rows[0] the secret and the higher rows random — evaluated with
// one MulSliceAdd pass per row instead of one Horner loop per byte. Every
// row must have len(dst); dst must not overlap any row except rows[0],
// which it may equal. dst is overwritten, not accumulated into.
func EvalInto(dst []byte, rows [][]byte, x byte) {
	if len(rows) == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	MulSlice(dst, rows[0], 1)
	pw := x
	for j := 1; j < len(rows); j++ {
		MulSliceAdd(dst, rows[j], pw)
		pw = Mul(pw, x)
	}
}

// EvalManyInto evaluates the polynomial at each point of xs, writing
// p.Eval(xs[i]) into dst[i] — the alloc-free multi-point companion of
// Eval for callers holding one scratch arena per goroutine.
func (p Polynomial) EvalManyInto(dst []byte, xs []byte) {
	if len(dst) != len(xs) {
		//lemonvet:allow panic mismatched kernel operand lengths are a caller bug, like out-of-range indexing
		panic("gf256: EvalManyInto length mismatch")
	}
	for i, x := range xs {
		dst[i] = p.Eval(x)
	}
}

// LagrangeCoeffs fills coeffs[i] with the Lagrange basis scalar
//
//	L_i(x) = Π_{j≠i} (x ⊕ xs[j]) / (xs[i] ⊕ xs[j])
//
// so that the degree-(k-1) polynomial through (xs[i], ys[i]) evaluates at
// x as Σ ys[i]·coeffs[i]. The basis is accumulated directly in scalars —
// no intermediate basis polynomials — which is what lets CombineInto and
// DecodeInto reconstruct whole share slices with k MulSliceAdd passes.
// The xs must be distinct and len(coeffs) must equal len(xs).
func LagrangeCoeffs(xs []byte, x byte, coeffs []byte) error {
	if err := checkDistinct(xs, len(coeffs)); err != nil {
		return err
	}
	for i := range xs {
		num, den := byte(1), byte(1)
		for j := range xs {
			if j == i {
				continue
			}
			num = Mul(num, x^xs[j])
			den = Mul(den, xs[i]^xs[j])
		}
		coeffs[i] = Div(num, den)
	}
	return nil
}
