package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCachesSuccess(t *testing.T) {
	c := New[int](4)
	calls := 0
	fn := func() (int, error) { calls++; return 42, nil }
	v, hit, err := c.Do("k", fn)
	if err != nil || hit || v != 42 {
		t.Fatalf("first Do = (%d, %t, %v)", v, hit, err)
	}
	v, hit, err = c.Do("k", fn)
	if err != nil || !hit || v != 42 {
		t.Fatalf("second Do = (%d, %t, %v), want cache hit", v, hit, err)
	}
	if calls != 1 {
		t.Errorf("fn ran %d times, want 1", calls)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d, %d), want (1, 1)", hits, misses)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New[int](4)
	boom := errors.New("boom")
	calls := 0
	if _, _, err := c.Do("k", func() (int, error) { calls++; return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if v, _, err := c.Do("k", func() (int, error) { calls++; return 7, nil }); err != nil || v != 7 {
		t.Fatalf("retry = (%d, %v)", v, err)
	}
	if calls != 2 {
		t.Errorf("fn ran %d times, want 2 (error must not be cached)", calls)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](2)
	mk := func(v int) func() (int, error) { return func() (int, error) { return v, nil } }
	_, _, _ = c.Do("a", mk(1))
	_, _, _ = c.Do("b", mk(2))
	_, _, _ = c.Do("a", mk(0)) // touch a: b becomes LRU
	_, _, _ = c.Do("c", mk(3)) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a = (%d, %t), want cached 1", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestSingleflightDeduplicates(t *testing.T) {
	c := New[int](4)
	var calls atomic.Int64
	gate := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do("k", func() (int, error) {
				calls.Add(1)
				<-gate // hold every concurrent caller on one flight
				return 99, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times under contention, want 1", got)
	}
	for i, v := range results {
		if v != 99 {
			t.Errorf("waiter %d got %d, want 99", i, v)
		}
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New[string](8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%16)
				v, _, err := c.Do(key, func() (string, error) { return key, nil })
				if err != nil || v != key {
					t.Errorf("Do(%q) = (%q, %v)", key, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Errorf("len = %d exceeds capacity", c.Len())
	}
}
