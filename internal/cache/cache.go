// Package cache provides the lemonaded design cache: a fixed-capacity LRU
// keyed by canonical strings, fronted by singleflight deduplication so
// that concurrent identical computations collapse into one.
//
// The intended workload is dse.Explore behind /v1/dse/explore: a search
// over a canonicalized Spec is pure and deterministic (same key ⇒ same
// design, bit for bit), so caching cannot change results — only make the
// second identical request orders of magnitude faster, and a stampede of
// identical requests cost one search total.
package cache

import "sync"

// entry is one LRU slot, woven into an intrusive doubly-linked list with
// sentinel root (most recent next to root.next).
type entry[V any] struct {
	key        string
	val        V
	prev, next *entry[V]
}

// call is one in-flight computation that callers wait on.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Cache is a concurrency-safe LRU with singleflight semantics. The zero
// value is not usable; construct with New.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int                  // immutable after New
	items    map[string]*entry[V] // guarded by mu
	root     entry[V]             // guarded by mu; list sentinel
	flight   map[string]*call[V]  // guarded by mu

	hits, misses uint64 // guarded by mu
}

// New returns a cache holding at most capacity values; at least one slot
// is always available.
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	c := &Cache[V]{
		capacity: capacity,
		items:    make(map[string]*entry[V], capacity),
		flight:   make(map[string]*call[V]),
	}
	c.root.prev = &c.root
	c.root.next = &c.root
	return c
}

// Do returns the cached value for key, or computes it with fn. Concurrent
// Do calls for the same key share one fn execution — every waiter gets the
// same value and error. Only successful results enter the cache; an error
// is returned to the callers that joined that flight and the next Do
// retries. hit reports whether the value was served from cache without
// waiting on a computation.
func (c *Cache[V]) Do(key string, fn func() (V, error)) (val V, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.items[key]; ok {
		c.moveFront(e)
		c.hits++
		c.mu.Unlock()
		return e.val, true, nil
	}
	if fl, ok := c.flight[key]; ok {
		// Join the in-flight computation. Not a cache hit: the caller
		// still waits for the work, it just isn't duplicated.
		c.mu.Unlock()
		<-fl.done
		return fl.val, false, fl.err
	}
	fl := &call[V]{done: make(chan struct{})}
	c.flight[key] = fl
	c.misses++
	c.mu.Unlock()

	fl.val, fl.err = fn()
	close(fl.done)

	c.mu.Lock()
	delete(c.flight, key)
	if fl.err == nil {
		c.insert(key, fl.val)
	}
	c.mu.Unlock()
	return fl.val, false, fl.err
}

// Get returns the cached value without computing on miss.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		c.moveFront(e)
		c.hits++
		return e.val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// insert adds key→val at the front, evicting the least-recently-used
// entry if over capacity. Caller holds mu.
func (c *Cache[V]) insert(key string, val V) {
	if e, ok := c.items[key]; ok { // raced with another flight; refresh
		e.val = val
		c.moveFront(e)
		return
	}
	if len(c.items) >= c.capacity {
		lru := c.root.prev
		c.unlink(lru)
		delete(c.items, lru.key)
	}
	e := &entry[V]{key: key, val: val}
	c.items[key] = e
	c.linkFront(e)
}

func (c *Cache[V]) moveFront(e *entry[V]) {
	c.unlink(e)
	c.linkFront(e)
}

func (c *Cache[V]) unlink(e *entry[V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *Cache[V]) linkFront(e *entry[V]) {
	e.next = c.root.next
	e.prev = &c.root
	e.next.prev = e
	c.root.next = e
}

// Len returns the number of cached values.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Stats returns cumulative (hits, misses). A Do that joins an in-flight
// computation counts as neither.
func (c *Cache[V]) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
