// Package baselines implements simplified, executable versions of the
// §8 related-work mechanisms the paper positions itself against:
//
//   - physically unclonable functions (PUFs) — physical-disorder security;
//   - TARDIS-style SRAM decay — time-based (not attempt-based) throttling;
//   - remotely triggered self-destructing chips — destruction on command.
//
// Each baseline demonstrates, in tests and in the Extension E3 comparison
// exhibit, the specific property gap the paper's wearout architectures
// close: PUFs cannot be shared between two parties (§6), decay throttles
// per unit time rather than per attempt, and triggered destruction fails
// open when the trigger never arrives.
package baselines

import (
	"lemonade/internal/rng"
)

// PUF is a simulated SRAM-style physically unclonable function: the
// power-up state of an array of cells, fixed per chip by manufacturing
// disorder, with a little per-readout noise.
type PUF struct {
	bias      []float64 // per-cell probability of reading 1
	noise     float64   // readout flip probability contribution
	readoutRg *rng.RNG
}

// NewPUF fabricates a chip with `cells` disorder cells. Manufacturing
// disorder is drawn from fabRNG — two chips fabricated with independent
// randomness get independent fingerprints, which is exactly why a PUF
// cannot implement a *shared* one-time pad (§6: "making it difficult to
// fabricate two identical chips so that a sender and receiver could share
// the pad").
func NewPUF(cells int, noise float64, fabRNG *rng.RNG) *PUF {
	p := &PUF{bias: make([]float64, cells), noise: noise, readoutRg: fabRNG.Derive("readout")}
	for i := range p.bias {
		// strongly-biased cells with a small metastable population
		if fabRNG.Bernoulli(0.9) {
			if fabRNG.Bool() {
				p.bias[i] = 1 - noise
			} else {
				p.bias[i] = noise
			}
		} else {
			p.bias[i] = 0.3 + 0.4*fabRNG.Float64() // metastable
		}
	}
	return p
}

// Readout powers the array up once and returns the observed bits.
func (p *PUF) Readout() []bool {
	out := make([]bool, len(p.bias))
	for i, b := range p.bias {
		out[i] = p.readoutRg.Bernoulli(b)
	}
	return out
}

// Fingerprint returns a majority-vote-stabilized readout (the usual fuzzy
// extraction stand-in): `votes` readouts per cell.
func (p *PUF) Fingerprint(votes int) []bool {
	counts := make([]int, len(p.bias))
	for v := 0; v < votes; v++ {
		for i, bit := range p.Readout() {
			if bit {
				counts[i]++
			}
		}
	}
	out := make([]bool, len(p.bias))
	for i, c := range counts {
		out[i] = c*2 > votes
	}
	return out
}

// HammingFraction returns the fraction of differing bits between two
// equal-length bit strings.
func HammingFraction(a, b []bool) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 1
	}
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	return float64(diff) / float64(len(a))
}
