package baselines

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"lemonade/internal/rng"
)

// --- PUF --------------------------------------------------------------------------

func TestPUFReproducibleOnSameChip(t *testing.T) {
	p := NewPUF(512, 0.05, rng.New(1))
	a := p.Fingerprint(9)
	b := p.Fingerprint(9)
	if frac := HammingFraction(a, b); frac > 0.05 {
		t.Errorf("same chip fingerprints differ by %.1f%%", 100*frac)
	}
}

func TestPUFDistinctAcrossChips(t *testing.T) {
	// the unclonability property: two chips' fingerprints are ~50% apart
	a := NewPUF(512, 0.05, rng.New(2)).Fingerprint(9)
	b := NewPUF(512, 0.05, rng.New(3)).Fingerprint(9)
	frac := HammingFraction(a, b)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("cross-chip distance %.1f%%, want ~50%%", 100*frac)
	}
}

func TestPUFCannotImplementSharedPad(t *testing.T) {
	// The paper's §6 argument executable: a sender and receiver each
	// fabricate a PUF and try to use the readouts as a shared one-time
	// pad. Their key material disagrees catastrophically.
	sender := NewPUF(1024, 0.05, rng.New(10))
	receiver := NewPUF(1024, 0.05, rng.New(11))
	sk, rk := sender.Fingerprint(9), receiver.Fingerprint(9)
	if HammingFraction(sk, rk) < 0.25 {
		t.Error("independent PUFs unexpectedly agree — unclonability broken")
	}
}

func TestHammingFractionEdges(t *testing.T) {
	if HammingFraction(nil, nil) != 1 {
		t.Error("empty inputs should report max distance")
	}
	if HammingFraction([]bool{true}, []bool{true, false}) != 1 {
		t.Error("length mismatch should report max distance")
	}
	if HammingFraction([]bool{true, false}, []bool{true, false}) != 0 {
		t.Error("identical strings should be distance 0")
	}
}

// --- TARDIS ------------------------------------------------------------------------

func TestTARDISThrottlesPerTime(t *testing.T) {
	r := rng.New(20)
	dev := NewTARDIS(4096, time.Hour, 30*time.Minute, r)
	// immediately after an attempt, another attempt is refused
	dev.Advance(time.Hour)
	if !dev.Attempt() {
		t.Fatal("first attempt after a long off-time should pass")
	}
	if dev.Attempt() {
		t.Error("back-to-back attempt should be throttled")
	}
	// waiting past the cooldown re-enables
	dev.Advance(45 * time.Minute)
	if !dev.Attempt() {
		t.Error("post-cooldown attempt should pass")
	}
}

func TestTARDISUnboundedTotalBudget(t *testing.T) {
	// The taxonomy gap vs wearout: given enough wall-clock time the
	// attacker's TOTAL budget is unbounded — 50 attempts in 50 cooldowns.
	r := rng.New(21)
	dev := NewTARDIS(4096, time.Hour, 30*time.Minute, r)
	got := 0
	for i := 0; i < 50; i++ {
		dev.Advance(time.Hour)
		if dev.Attempt() {
			got++
		}
	}
	if got < 48 {
		t.Errorf("patient attacker made only %d/50 attempts", got)
	}
}

func TestTARDISEstimateAccuracy(t *testing.T) {
	r := rng.New(22)
	dev := NewTARDIS(1<<14, time.Hour, time.Minute, r)
	dev.Advance(2 * time.Hour)
	est := dev.EstimateOffTime()
	if est < 90*time.Minute || est > 150*time.Minute {
		t.Errorf("estimated %v for a 2h off-time", est)
	}
}

// --- Self-destruct ------------------------------------------------------------------

func TestSelfDestructWorksWithChannel(t *testing.T) {
	c := NewSelfDestructChip([]byte("payload"))
	got, err := c.Read()
	if err != nil || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("read: %v %q", err, got)
	}
	if !c.Trigger() {
		t.Fatal("trigger with working channel should succeed")
	}
	if _, err := c.Read(); !errors.Is(err, ErrDestroyed) {
		t.Error("destroyed chip served a read")
	}
	if !c.Destroyed() {
		t.Error("Destroyed() disagrees")
	}
}

func TestSelfDestructFailsOpenWhenChannelBlocked(t *testing.T) {
	// The taxonomy gap vs wearout: block the trigger channel and read
	// forever.
	c := NewSelfDestructChip([]byte("payload"))
	c.BlockChannel()
	if c.Trigger() {
		t.Fatal("trigger should fail on a blocked channel")
	}
	for i := 0; i < 10_000; i++ {
		if _, err := c.Read(); err != nil {
			t.Fatalf("read %d failed: %v", i, err)
		}
	}
	if c.Reads() != 10_000 {
		t.Errorf("reads = %d", c.Reads())
	}
}
