package baselines

import "errors"

// SelfDestructChip is a simulated remotely-triggered self-destructing
// device (the DARPA shattering-glass chips, cited as [6]): it serves
// reads until a destruction command arrives over a control channel.
//
// The contrast with wearout (§8): destruction requires an external
// trigger. An adversary who captures the device and *blocks the channel*
// (the obvious first move) gets unlimited reads; the paper's wearout
// architectures "wear out automatically without a need for remote
// control".
type SelfDestructChip struct {
	secret    []byte
	destroyed bool
	channelOK bool // whether the trigger channel is reachable
	reads     int
}

// ErrDestroyed is returned after a successful destruction.
var ErrDestroyed = errors.New("baselines: chip destroyed")

// NewSelfDestructChip provisions a chip holding secret with a working
// trigger channel.
func NewSelfDestructChip(secret []byte) *SelfDestructChip {
	dup := make([]byte, len(secret))
	copy(dup, secret)
	return &SelfDestructChip{secret: dup, channelOK: true}
}

// Read serves the secret (unbounded, unless destroyed).
func (c *SelfDestructChip) Read() ([]byte, error) {
	if c.destroyed {
		return nil, ErrDestroyed
	}
	c.reads++
	out := make([]byte, len(c.secret))
	copy(out, c.secret)
	return out, nil
}

// BlockChannel models the adversary jamming or disconnecting the trigger
// path (e.g. a Faraday bag) before the owner can react.
func (c *SelfDestructChip) BlockChannel() { c.channelOK = false }

// Trigger attempts remote destruction. It only works while the channel is
// reachable.
func (c *SelfDestructChip) Trigger() bool {
	if !c.channelOK {
		return false
	}
	c.destroyed = true
	c.secret = nil
	return true
}

// Reads returns how many times the secret has been served.
func (c *SelfDestructChip) Reads() int { return c.reads }

// Destroyed reports whether destruction succeeded.
func (c *SelfDestructChip) Destroyed() bool { return c.destroyed }
