package baselines

import (
	"math"
	"time"

	"lemonade/internal/rng"
)

// TARDIS is a simulated SRAM-decay time keeper (Rahmati et al., USENIX
// Security 2012, cited as [45]): a batteryless device estimates how long
// it has been powered off from the fraction of SRAM cells that decayed to
// their ground state, and uses that estimate to throttle response rates.
//
// The crucial contrast with wearout (the paper's §8 taxonomy): TARDIS
// bounds attempts *per unit time*, so an attacker with years of access
// gets an unbounded total budget; wearout bounds the *total*.
type TARDIS struct {
	cells     int
	decayHalf time.Duration // half-life of a cell's retained charge
	cooldown  time.Duration // required off-time between attempts
	lastOff   time.Duration // simulated clock at last power-down
	clock     time.Duration // simulated wall clock
	r         *rng.RNG
}

// NewTARDIS builds a decay-based throttle requiring `cooldown` of
// power-off time between attempts.
func NewTARDIS(cells int, decayHalf, cooldown time.Duration, r *rng.RNG) *TARDIS {
	return &TARDIS{cells: cells, decayHalf: decayHalf, cooldown: cooldown, r: r}
}

// Advance moves the simulated wall clock (the device stays powered off).
func (t *TARDIS) Advance(d time.Duration) { t.clock += d }

// EstimateOffTime measures the decayed-cell fraction and inverts the
// decay curve. Measurement noise is binomial in the cell count.
func (t *TARDIS) EstimateOffTime() time.Duration {
	elapsed := t.clock - t.lastOff
	pDecay := 1 - halfLifeSurvival(elapsed, t.decayHalf)
	decayed := 0
	for i := 0; i < t.cells; i++ {
		if t.r.Bernoulli(pDecay) {
			decayed++
		}
	}
	frac := float64(decayed) / float64(t.cells)
	if frac >= 1 {
		return 1 << 40 // fully decayed: "a long time"
	}
	return invertHalfLife(frac, t.decayHalf)
}

// Attempt asks the device to serve one authentication attempt. It refuses
// unless the estimated off-time exceeds the cooldown; serving an attempt
// powers the device down again (resetting the decay reference).
func (t *TARDIS) Attempt() bool {
	if t.EstimateOffTime() < t.cooldown {
		return false
	}
	t.lastOff = t.clock
	return true
}

func halfLifeSurvival(elapsed, half time.Duration) float64 {
	if half <= 0 {
		return 0
	}
	// survival = 2^-(elapsed/half)
	return math.Exp2(-float64(elapsed) / float64(half))
}

func invertHalfLife(decayedFrac float64, half time.Duration) time.Duration {
	// decayedFrac = 1 - 2^-x  →  x = -log2(1 - decayedFrac)
	surv := 1 - decayedFrac
	if surv <= 0 {
		return 1 << 40
	}
	return time.Duration(-math.Log2(surv) * float64(half))
}
