package fault

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"
)

// driveOps issues a fixed synthetic operation sequence against an
// injector-backed FS and returns each op's error. The sequence mixes
// every countable op kind so applicability filtering is exercised.
func driveOps(t *testing.T, in *Injector, dir string) []error {
	t.Helper()
	var errs []error
	rec := func(err error) { errs = append(errs, err) }

	rec(in.MkdirAll(filepath.Join(dir, "d"), 0o755)) // op 1
	f, err := in.OpenFile(filepath.Join(dir, "d", "a.log"), os.O_CREATE|os.O_WRONLY, 0o644)
	rec(err) // op 2
	if err != nil {
		return errs
	}
	_, werr := f.Write([]byte("0123456789")) // op 3
	rec(werr)
	rec(f.Sync())                                                                      // op 4
	rec(f.Truncate(4))                                                                 // op 5
	rec(f.Close())                                                                     // uncounted
	rec(in.Rename(filepath.Join(dir, "d", "a.log"), filepath.Join(dir, "d", "b.log"))) // op 6
	rec(in.Remove(filepath.Join(dir, "d", "b.log")))                                   // op 7
	return errs
}

// TestInjectorDeterminism is the acceptance criterion in miniature: the
// same plan over the same op sequence fires the same faults, run after
// run.
func TestInjectorDeterminism(t *testing.T) {
	plan := FromSeed(7, 64, 0.5)
	if len(plan.Rules) == 0 {
		t.Fatal("plan at density 0.5 scheduled nothing")
	}
	var logs [][]Injection
	for run := 0; run < 2; run++ {
		in := NewInjector(OS{}, plan)
		driveOps(t, in, t.TempDir())
		fired := in.Fired()
		// Paths differ per TempDir; compare everything else.
		for i := range fired {
			fired[i].Path = filepath.Base(fired[i].Path)
		}
		logs = append(logs, fired)
	}
	if !reflect.DeepEqual(logs[0], logs[1]) {
		t.Fatalf("same plan, same ops, different faults:\nrun 0: %v\nrun 1: %v", logs[0], logs[1])
	}
}

func TestFromSeedIsPureInSeed(t *testing.T) {
	a := FromSeed(1, 4096, 0.02)
	b := FromSeed(1, 4096, 0.02)
	c := FromSeed(2, 4096, 0.02)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	if reflect.DeepEqual(a.Rules, c.Rules) {
		t.Fatal("different seeds produced identical plans")
	}
	if len(a.Rules) == 0 {
		t.Fatal("density 0.02 over 4096 ops scheduled nothing")
	}
	for i := 1; i < len(a.Rules); i++ {
		if a.Rules[i].Op <= a.Rules[i-1].Op {
			t.Fatal("rules not strictly increasing by op")
		}
	}
}

func TestKindApplicability(t *testing.T) {
	// A FailFsync aimed at a Write op passes through harmlessly; aimed at
	// the Sync op it fires.
	in := NewInjector(OS{}, Plan{Rules: []Rule{
		{Op: 3, Kind: FailFsync}, // op 3 is the Write — inapplicable
		{Op: 4, Kind: FailFsync}, // op 4 is the Sync — fires
	}})
	errs := driveOps(t, in, t.TempDir())
	if errs[2] != nil {
		t.Fatalf("FailFsync fired on a Write: %v", errs[2])
	}
	if !errors.Is(errs[3], ErrInjected) || !errors.Is(errs[3], syscall.EIO) {
		t.Fatalf("Sync error = %v, want injected EIO", errs[3])
	}
	fired := in.Fired()
	if len(fired) != 1 || fired[0].Op != 4 {
		t.Fatalf("fired = %v, want exactly op 4", fired)
	}
}

func TestNoSpaceSurfacesENOSPC(t *testing.T) {
	in := NewInjector(OS{}, Plan{Rules: []Rule{{Op: 1, Kind: NoSpace}}})
	err := in.MkdirAll(filepath.Join(t.TempDir(), "x"), 0o755)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want injected ENOSPC", err)
	}
}

func TestShortWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS{}, Plan{Rules: []Rule{{Op: 2, Kind: ShortWrite}}})
	f, err := in.OpenFile(filepath.Join(dir, "torn.log"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write([]byte("0123456789"))
	if !errors.Is(werr, ErrInjected) {
		t.Fatalf("write error = %v, want injected", werr)
	}
	if n != 5 {
		t.Fatalf("short write reported %d bytes, want 5 (half)", n)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "torn.log"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "01234" {
		t.Fatalf("file holds %q, want the torn prefix %q", data, "01234")
	}
}

func TestSlowOpDelaysThenProceeds(t *testing.T) {
	var slept []time.Duration
	in := NewInjector(OS{}, Plan{Rules: []Rule{{Op: 1, Kind: SlowOp, Delay: 2 * time.Millisecond}}},
		WithSleep(func(d time.Duration) { slept = append(slept, d) }))
	dir := filepath.Join(t.TempDir(), "slow")
	if err := in.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("SlowOp must proceed after the delay: %v", err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("operation did not actually run: %v", err)
	}
	if len(slept) != 1 || slept[0] != 2*time.Millisecond {
		t.Fatalf("slept %v, want one 2ms delay", slept)
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=7,ops=128,density=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || len(p.Rules) == 0 {
		t.Fatalf("plan = %+v, want seed 7 with rules", p)
	}
	if !reflect.DeepEqual(p, FromSeed(7, 128, 0.5)) {
		t.Fatal("ParsePlan diverges from FromSeed")
	}
	for _, bad := range []string{"", "ops=10", "seed=x", "seed=1,density=2", "seed=1,banana=2", "seed"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted, want error", bad)
		}
	}
}

func TestOpLogOnlyWhenRequested(t *testing.T) {
	in := NewInjector(OS{}, Plan{})
	driveOps(t, in, t.TempDir())
	if got := in.OpLog(); len(got) != 0 {
		t.Fatalf("op log recorded %d ops without WithOpLog", len(got))
	}
	if in.OpCount() != 7 {
		t.Fatalf("counted %d ops, want 7", in.OpCount())
	}

	rec := NewInjector(OS{}, Plan{}, WithOpLog())
	driveOps(t, rec, t.TempDir())
	log := rec.OpLog()
	if len(log) != 7 {
		t.Fatalf("op log holds %d ops, want 7", len(log))
	}
	wantKinds := []OpKind{OpMkdirAll, OpOpenFile, OpWrite, OpSync, OpTruncate, OpRename, OpRemove}
	for i, op := range log {
		if op.N != uint64(i+1) || op.Kind != wantKinds[i] {
			t.Fatalf("op %d = %+v, want N=%d kind %v", i, op, i+1, wantKinds[i])
		}
	}
}
