package fault

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"lemonade/internal/rng"
)

// Kind enumerates the storage faults the injector can produce. Each is a
// failure mode the fail-closed wearout guarantee must survive: the store
// may lose or delay durability, but an access must never succeed without
// its record on disk.
type Kind int

const (
	// FailFsync makes a Sync call return an error without syncing.
	FailFsync Kind = iota
	// ShortWrite writes a prefix of the buffer, then errors: a torn
	// append that recovery must truncate away.
	ShortWrite
	// NoSpace fails any mutating operation with ENOSPC.
	NoSpace
	// SlowOp delays the operation, then lets it proceed — exercises
	// request deadlines and the load shedder, not data loss.
	SlowOp

	numKinds = 4
)

func (k Kind) String() string {
	switch k {
	case FailFsync:
		return "fail-fsync"
	case ShortWrite:
		return "short-write"
	case NoSpace:
		return "no-space"
	case SlowOp:
		return "slow-op"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// errno is the OS-level error an injected fault surfaces as, so callers'
// errors.Is checks behave exactly as they would against a real disk.
func (k Kind) errno() error {
	if k == NoSpace {
		return syscall.ENOSPC
	}
	return syscall.EIO
}

// applies reports whether a fault of this kind can fire on the given
// operation; a rule landing on an inapplicable op passes through (e.g. a
// FailFsync scheduled where the workload performs a Write).
func (k Kind) applies(op OpKind) bool {
	switch k {
	case FailFsync:
		return op == OpSync
	case ShortWrite:
		return op == OpWrite
	}
	return true
}

// OpKind names the mutating operations the injector counts. Reads
// (Open/ReadDir/ReadFile/Stat) and Close are passthrough and uncounted:
// injection can only lose durability, never fabricate history.
type OpKind int

const (
	OpMkdirAll OpKind = iota
	OpOpenFile
	OpRemove
	OpRename
	OpTruncate
	OpWrite
	OpSync
)

func (o OpKind) String() string {
	switch o {
	case OpMkdirAll:
		return "mkdirall"
	case OpOpenFile:
		return "openfile"
	case OpRemove:
		return "remove"
	case OpRename:
		return "rename"
	case OpTruncate:
		return "truncate"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	}
	return fmt.Sprintf("OpKind(%d)", int(o))
}

// Rule schedules one fault at one position in the mutation-op sequence
// (ops are numbered from 1). Delay is only meaningful for SlowOp.
type Rule struct {
	Op    uint64
	Kind  Kind
	Delay time.Duration
}

// Plan is a complete, reproducible fault schedule.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// FromSeed derives a fault plan as a pure function of the seed: each of
// the first ops mutation slots carries a fault with probability density,
// kind drawn uniformly. Same seed ⇒ same plan, and because the Injector
// counts operations deterministically, same plan + same workload ⇒ same
// failure sequence.
func FromSeed(seed, ops uint64, density float64) Plan {
	r := rng.New(seed).Derive("fault.plan")
	var rules []Rule
	for n := uint64(1); n <= ops; n++ {
		if !r.Bernoulli(density) {
			continue
		}
		rules = append(rules, Rule{Op: n, Kind: Kind(r.Intn(numKinds)), Delay: 2 * time.Millisecond})
	}
	return Plan{Seed: seed, Rules: rules}
}

// ParsePlan parses the `lemonaded serve -chaos` spec: a comma-separated
// list of key=value pairs, e.g. "seed=7,ops=4096,density=0.02". Only
// seed is required.
func ParsePlan(spec string) (Plan, error) {
	var (
		seed    uint64
		seedSet bool
		ops     uint64  = 4096
		density float64 = 0.02
	)
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: bad plan term %q (want key=value)", kv)
		}
		var err error
		switch key {
		case "seed":
			seed, err = strconv.ParseUint(val, 10, 64)
			seedSet = true
		case "ops":
			ops, err = strconv.ParseUint(val, 10, 64)
		case "density":
			density, err = strconv.ParseFloat(val, 64)
			if err == nil && (density < 0 || density > 1) {
				err = fmt.Errorf("density %v outside [0,1]", density)
			}
		default:
			return Plan{}, fmt.Errorf("fault: unknown plan key %q", key)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("fault: bad plan value %q: %w", kv, err)
		}
	}
	if !seedSet {
		return Plan{}, errors.New("fault: plan needs seed=<n>")
	}
	return FromSeed(seed, ops, density), nil
}

// ErrInjected marks every error produced by the injector, so tests can
// tell scripted faults from real ones.
var ErrInjected = errors.New("fault: injected")

// Injection records one fault that actually fired.
type Injection struct {
	Op   uint64
	Kind Kind
	What OpKind
	Path string
}

func (inj Injection) error() error {
	return fmt.Errorf("%w: %s at op %d (%s %s): %w",
		ErrInjected, inj.Kind, inj.Op, inj.What, inj.Path, inj.Kind.errno())
}

// Op is one entry in the optional operation log (see WithOpLog): the
// record-then-target technique runs a scenario once with an empty plan
// to learn which op number performs, say, the snapshot fsync, then
// reruns it with a rule aimed at exactly that op.
type Op struct {
	N    uint64
	Kind OpKind
	Path string
}

// Option configures an Injector.
type Option func(*Injector)

// WithSleep supplies the sleeper SlowOp uses; the default is a no-op so
// library tests stay fast and deterministic. The daemon passes
// time.Sleep.
func WithSleep(fn func(time.Duration)) Option {
	return func(in *Injector) { in.sleep = fn }
}

// WithOpLog records every counted operation for record-then-target tests.
func WithOpLog() Option {
	// Options run inside NewInjector before the injector is shared.
	return func(in *Injector) { in.logOps = true } //lemonvet:allow guardedby option applies pre-publication, inside NewInjector
}

// Injector is an FS that executes a Plan: it counts mutating operations
// and fails (or delays) exactly the ones the plan names. Safe for
// concurrent use; the op counter is a single total order.
type Injector struct {
	inner FS
	sleep func(time.Duration)

	mu     sync.Mutex
	n      uint64          // guarded by mu
	rules  map[uint64]Rule // guarded by mu
	fired  []Injection     // guarded by mu
	logOps bool            // guarded by mu
	ops    []Op            // guarded by mu
}

// NewInjector wraps inner with the given plan.
func NewInjector(inner FS, plan Plan, opts ...Option) *Injector {
	in := &Injector{inner: inner, rules: make(map[uint64]Rule, len(plan.Rules))}
	for _, r := range plan.Rules {
		in.rules[r.Op] = r
	}
	for _, o := range opts {
		o(in)
	}
	return in
}

// begin advances the op counter and returns the fault scheduled for this
// op, if any applies. delay is nonzero only for SlowOp.
func (in *Injector) begin(op OpKind, path string) (inj Injection, delay time.Duration, ok bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.n++
	if in.logOps {
		in.ops = append(in.ops, Op{N: in.n, Kind: op, Path: path})
	}
	r, found := in.rules[in.n]
	if !found || !r.Kind.applies(op) {
		return Injection{}, 0, false
	}
	inj = Injection{Op: in.n, Kind: r.Kind, What: op, Path: path}
	in.fired = append(in.fired, inj)
	return inj, r.Delay, true
}

// gate is the common pre-call hook for ops where a firing fault either
// delays (SlowOp) or replaces the whole call with an error.
func (in *Injector) gate(op OpKind, path string) error {
	inj, delay, ok := in.begin(op, path)
	if !ok {
		return nil
	}
	if inj.Kind == SlowOp {
		in.doSleep(delay)
		return nil
	}
	return inj.error()
}

func (in *Injector) doSleep(d time.Duration) {
	if in.sleep != nil {
		in.sleep(d)
	}
}

// Fired returns the faults that actually fired, in op order.
func (in *Injector) Fired() []Injection {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Injection, len(in.fired))
	copy(out, in.fired)
	return out
}

// OpLog returns the counted-operation log (empty unless WithOpLog).
func (in *Injector) OpLog() []Op {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Op, len(in.ops))
	copy(out, in.ops)
	return out
}

// OpCount returns how many mutating operations have been counted.
func (in *Injector) OpCount() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.n
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if err := in.gate(OpMkdirAll, path); err != nil {
		return err
	}
	return in.inner.MkdirAll(path, perm)
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := in.gate(OpOpenFile, name); err != nil {
		return nil, err
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f, path: name}, nil
}

// Open is a read-side call and uncounted, but the returned handle is
// still wrapped: the WAL syncs directories through it, and those Syncs
// must be injectable.
func (in *Injector) Open(name string) (File, error) {
	f, err := in.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f, path: name}, nil
}

func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) { return in.inner.ReadDir(name) }
func (in *Injector) ReadFile(name string) ([]byte, error)       { return in.inner.ReadFile(name) }

func (in *Injector) Remove(name string) error {
	if err := in.gate(OpRemove, name); err != nil {
		return err
	}
	return in.inner.Remove(name)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.gate(OpRename, newpath); err != nil {
		return err
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Truncate(name string, size int64) error {
	if err := in.gate(OpTruncate, name); err != nil {
		return err
	}
	return in.inner.Truncate(name, size)
}

// injFile wraps a File so Write/Sync/Truncate participate in the fault
// schedule. Stat and Close pass through uncounted.
type injFile struct {
	in   *Injector
	f    File
	path string
}

func (w *injFile) Write(p []byte) (int, error) {
	inj, delay, ok := w.in.begin(OpWrite, w.path)
	if ok {
		switch inj.Kind {
		case SlowOp:
			w.in.doSleep(delay)
		case ShortWrite:
			// A torn write: a prefix lands on disk, then the device
			// errors. Recovery must treat the tail as noise.
			n := len(p) / 2
			if n > 0 {
				wrote, werr := w.f.Write(p[:n])
				if werr != nil {
					return wrote, werr
				}
				n = wrote
			}
			return n, inj.error()
		default:
			return 0, inj.error()
		}
	}
	return w.f.Write(p)
}

func (w *injFile) Sync() error {
	inj, delay, ok := w.in.begin(OpSync, w.path)
	if ok {
		if inj.Kind == SlowOp {
			w.in.doSleep(delay)
		} else {
			// The sync is skipped entirely: the kernel may hold the
			// bytes, but the caller must assume they are gone.
			return inj.error()
		}
	}
	return w.f.Sync()
}

func (w *injFile) Truncate(size int64) error {
	if err := w.in.gate(OpTruncate, w.path); err != nil {
		return err
	}
	return w.f.Truncate(size)
}

func (w *injFile) Stat() (os.FileInfo, error) { return w.f.Stat() }
func (w *injFile) Close() error               { return w.f.Close() }
