package fault_test

// The chaos harness: seeded randomized fault schedules against the full
// durable stack (wal → registry → core), across repeated crash/recover
// lifetimes of one data directory. Two invariants are the whole point:
//
//  1. Fail closed — no matter which fault fires at which op, the durable
//     history never records more successful accesses than the design's
//     wearout budget allows, and no secret is ever revealed without a
//     durable record backing it.
//  2. Bit-identical recovery — once the faults stop, recovering the
//     directory twice yields byte-for-byte identical architecture state.
//
// Everything is deterministic: the fault plan comes from a seed, the
// architecture's device lifetimes come from its fabrication seed, the
// environment schedule is a pure function of the access index, and the
// store clock is the zero clock. Same seed ⇒ same run, always.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/fault"
	"lemonade/internal/nems"
	"lemonade/internal/registry"
	"lemonade/internal/rng"
	"lemonade/internal/wal"
)

const chaosArchSeed = 42

func chaosSecret() []byte { return []byte("0123456789abcdef") }

func chaosDesign(t *testing.T) dse.Design {
	t.Helper()
	s := dse.Spec{LAB: 30, KFrac: 0.1, ContinuousT: true}
	s.Dist.Alpha = 6
	s.Dist.Beta = 8
	s.Criteria.MinWork = 0.99
	s.Criteria.MaxOverrun = 0.01
	d, err := dse.Explore(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// chaosEnv is the deterministic environment schedule; every 7th access
// runs hot so accelerated wear is part of every replayed trajectory.
func chaosEnv(i int) nems.Environment {
	if i%7 == 6 {
		return nems.Environment{TempCelsius: 200}
	}
	return nems.RoomTemp
}

// runLives plays lifetimes of the daemon against dir through the faulty
// filesystem: each life opens the store, recovers, (re-)provisions if
// needed, bursts accesses with a mid-burst snapshot, then crashes by
// abandoning the store without Close. It returns how many times the
// secret was actually revealed to the "client".
//
// Error discipline: injected failures are the weather — tolerated
// everywhere. Anything else is a bug, and a *wal.CorruptionError is the
// cardinal one: it means a torn write escaped the append-time repair and
// the store refused the directory.
func runLives(t *testing.T, dir string, inj *fault.Injector) (revealed int) {
	t.Helper()
	design := chaosDesign(t)
	secret := chaosSecret()
	provisioned := false

	for life := 0; life < 8; life++ {
		st, err := wal.Open(wal.Config{Dir: dir, SnapshotThreshold: 16, FS: inj})
		if err != nil {
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("life %d: non-injected open failure: %v", life, err)
			}
			continue // this life died before the store came up
		}
		reg := registry.NewWithStore(4, st)
		if _, err := st.Recover(reg); err != nil {
			var ce *wal.CorruptionError
			if errors.As(err, &ce) {
				t.Fatalf("life %d: log corruption — a torn write escaped repair: %v", life, err)
			}
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("life %d: non-injected recovery failure: %v", life, err)
			}
			continue // crashed during recovery; next life retries
		}

		e, ok := reg.Get("arch-000001")
		if provisioned && !ok {
			t.Fatalf("life %d: durably provisioned architecture lost", life)
		}
		if !ok {
			arch, err := core.Build(design, secret, rng.New(chaosArchSeed))
			if err != nil {
				t.Fatal(err)
			}
			ne, perr := reg.Provision(arch, chaosArchSeed, secret)
			if perr != nil {
				if !errors.Is(perr, fault.ErrInjected) {
					t.Fatalf("life %d: non-injected provision failure: %v", life, perr)
				}
				continue // provision not durable; a phantom may replay next life
			}
			e = ne
		}
		provisioned = true

	burst:
		for i := 0; i < 48; i++ {
			if i == 24 {
				// Walk the snapshot/rotation path mid-burst. An injected
				// failure just means the WAL stays authoritative.
				if serr := st.Snapshot(reg); serr != nil && !errors.Is(serr, fault.ErrInjected) {
					t.Fatalf("life %d: non-injected snapshot failure: %v", life, serr)
				}
			}
			got, aerr := e.Access(context.Background(), chaosEnv(life*48+i))
			switch {
			case aerr == nil:
				if !bytes.Equal(got, secret) {
					t.Fatalf("life %d: revealed wrong secret", life)
				}
				revealed++
			case errors.Is(aerr, core.ErrExhausted):
				break burst // lockout is permanent; the life idles out
			case errors.Is(aerr, core.ErrTransient), errors.Is(aerr, core.ErrDecodeFailed):
				// hardware-model noise, part of the trajectory
			case errors.Is(aerr, registry.ErrStore):
				if !errors.Is(aerr, fault.ErrInjected) {
					t.Fatalf("life %d access %d: non-injected store failure: %v", life, i, aerr)
				}
				// failed closed: no reveal, no wearout consumed durably
			default:
				t.Fatalf("life %d access %d: %v", life, i, aerr)
			}
		}
		// Crash: abandon st without Close.
	}
	return revealed
}

// cleanRecover recovers dir through the real filesystem and returns the
// surviving entry (nil if the schedule never made anything durable).
func cleanRecover(t *testing.T, dir string) *registry.Entry {
	t.Helper()
	st, err := wal.Open(wal.Config{Dir: dir})
	if err != nil {
		t.Fatalf("clean open: %v", err)
	}
	reg := registry.NewWithStore(4, st)
	if _, err := st.Recover(reg); err != nil {
		t.Fatalf("clean recovery must succeed once faults stop: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	e, ok := reg.Get("arch-000001")
	if !ok {
		return nil
	}
	return e
}

// TestChaosFailClosed is the harness entry point: for each fault seed,
// run the lifetimes, then verify the two invariants on the survivors.
// CI pins seeds 1–3; longer local runs add more.
func TestChaosFailClosed(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if !testing.Short() {
		seeds = append(seeds, 4, 5, 6, 7, 8)
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			inj := fault.NewInjector(fault.OS{}, fault.FromSeed(seed, 4096, 0.05))
			revealed := runLives(t, dir, inj)

			first := cleanRecover(t, dir)
			if first == nil {
				if revealed > 0 {
					t.Fatalf("%d secrets revealed but nothing recovered — reveals escaped the log", revealed)
				}
				return // the schedule killed every life before anything stuck
			}
			second := cleanRecover(t, dir)

			// Invariant 2: bit-identical recovery.
			if !reflect.DeepEqual(first.Arch.State(), second.Arch.State()) {
				t.Fatal("two recoveries of the same directory diverge")
			}

			// Invariant 1: fail closed. The durable history (phantom
			// fsync-failed appends included — those only add wear) never
			// exceeds the budget, and every client-visible reveal is
			// backed by a durable record.
			design := chaosDesign(t)
			budget := design.MaxAllowedAccesses() + 2*design.Copies
			total, okCount := first.Arch.Accesses()
			if int(okCount) > budget {
				t.Fatalf("durable history records %d successes (of %d attempts), budget is %d",
					okCount, total, budget)
			}
			if revealed > int(okCount) {
				t.Fatalf("client saw %d reveals but only %d durable successes — a reveal escaped the log",
					revealed, okCount)
			}
		})
	}
}

// TestChaosScheduleDeterministic replays one full chaos schedule twice
// in separate directories: the faults that fire, the ops they hit, and
// the client-visible reveal count must match exactly.
func TestChaosScheduleDeterministic(t *testing.T) {
	plan := fault.FromSeed(3, 4096, 0.05)
	var fires [][]fault.Injection
	var reveals []int
	for run := 0; run < 2; run++ {
		dir := t.TempDir()
		inj := fault.NewInjector(fault.OS{}, plan)
		reveals = append(reveals, runLives(t, dir, inj))
		fired := inj.Fired()
		for i := range fired {
			fired[i].Path = filepath.Base(fired[i].Path)
		}
		fires = append(fires, fired)
	}
	if reveals[0] != reveals[1] {
		t.Fatalf("reveal counts diverge: %d vs %d", reveals[0], reveals[1])
	}
	if !reflect.DeepEqual(fires[0], fires[1]) {
		t.Fatalf("fault sequences diverge:\nrun 0: %v\nrun 1: %v", fires[0], fires[1])
	}
}
