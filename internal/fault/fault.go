// Package fault is the deterministic fault-injection layer under the
// daemon's durable store.
//
// The WAL performs every durability-relevant operation through the FS
// interface below. In production that is OS — a zero-cost veneer over
// package os. In tests and behind the hidden `lemonaded serve -chaos`
// flag it is an Injector: a seeded, schedule-driven wrapper that fails
// specific operations (fsync failure, short/torn write, ENOSPC, slow
// op) at specific points in the operation sequence. Schedules are pure
// functions of a seed, so a failing chaos run reproduces exactly.
package fault

import (
	"io/fs"
	"os"
)

// File is the slice of *os.File the WAL writes through. Write, Sync and
// Truncate guard durability: the lemonvet errcheck analyzer refuses even
// an explicit `_ =` discard of their errors.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Close() error
}

// FS is the filesystem surface internal/wal performs durability through.
// Mutating calls (MkdirAll, OpenFile, Remove, Rename, Truncate) and the
// per-File Write/Sync/Truncate/Close are the injection points; reads
// pass through untouched so an injected fault can never fabricate log
// content — only lose or delay it, which is the failure direction the
// fail-closed guarantee must survive.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	Remove(name string) error
	Rename(oldpath, newpath string) error
	Truncate(name string, size int64) error
}

// OS is the production FS: a thin veneer over package os.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (OS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (OS) Remove(name string) error                   { return os.Remove(name) }
func (OS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (OS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }
