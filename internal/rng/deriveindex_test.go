package rng

import (
	"fmt"
	"math"
	"testing"
)

// TestDeriveIndexEquivalence locks down the reproducibility contract of
// DeriveIndex: for any parent state and index, DeriveIndex(label, i) must
// produce a stream bit-identical to Derive(fmt.Sprintf(label+"%d", i)).
// montecarlo relies on this to keep historical trial streams stable after
// switching its hot loop to the allocation-free form.
func TestDeriveIndexEquivalence(t *testing.T) {
	indices := []int{0, 1, 2, 9, 10, 11, 99, 100, 12345, 1 << 30, math.MaxInt64 & (1<<62 - 1), -1, -10, -12345, math.MinInt64}
	for _, seed := range []uint64{0, 1, 42, 0xDEADBEEF} {
		parent := New(seed)
		// Advance the parent a little so the state is not the raw seed mix.
		parent.Uint64()
		for _, label := range []string{"trial-", "", "shard/", "x"} {
			for _, i := range indices {
				want := parent.Derive(fmt.Sprintf(label+"%d", i))
				got := parent.DeriveIndex(label, i)
				for k := 0; k < 8; k++ {
					w, g := want.Uint64(), got.Uint64()
					if w != g {
						t.Fatalf("seed=%d label=%q i=%d draw %d: DeriveIndex=%#x Derive=%#x", seed, label, i, k, g, w)
					}
				}
			}
		}
	}
}

func TestDeriveIndexDistinctStreams(t *testing.T) {
	parent := New(7)
	seen := make(map[uint64]int)
	for i := 0; i < 1000; i++ {
		v := parent.DeriveIndex("trial-", i).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d share first draw %#x", prev, i, v)
		}
		seen[v] = i
	}
}

func BenchmarkDeriveSprintf(b *testing.B) {
	parent := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = parent.Derive(fmt.Sprintf("trial-%d", i))
	}
}

func BenchmarkDeriveIndex(b *testing.B) {
	parent := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = parent.DeriveIndex("trial-", i)
	}
}

// TestDeriveIndexNoAlloc asserts the hot-loop derivation does not allocate.
func TestDeriveIndexNoAlloc(t *testing.T) {
	parent := New(1)
	allocs := testing.AllocsPerRun(200, func() {
		sink = parent.DeriveIndex("trial-", 123456)
	})
	// One allocation for the returned *RNG itself is expected; the point is
	// that the label formatting contributes zero.
	if allocs > 1 {
		t.Fatalf("DeriveIndex allocates %.1f times per call, want <= 1", allocs)
	}
}

var sink *RNG

// TestIndexDeriverEquivalence pins SeedInto to DeriveIndex: for any parent
// state, label, and index, the caller-held generator must land in exactly
// the state DeriveIndex returns — that equality is what lets montecarlo
// reuse one generator across thousands of trials.
func TestIndexDeriverEquivalence(t *testing.T) {
	indices := []int{0, 1, 9, 10, 99, 12345, 1 << 30, -1, -12345, math.MinInt64}
	for _, seed := range []uint64{0, 1, 42, 0xDEADBEEF} {
		parent := New(seed)
		parent.Uint64()
		for _, label := range []string{"trial-", "", "shard/"} {
			d := parent.IndexDeriver(label)
			var got RNG
			for _, i := range indices {
				d.SeedInto(&got, i)
				want := parent.DeriveIndex(label, i)
				if got.State() != want.State() {
					t.Fatalf("seed=%d label=%q i=%d: SeedInto state %x, DeriveIndex state %x",
						seed, label, i, got.State(), want.State())
				}
			}
		}
	}
}

// TestIndexDeriverCapturesState: the deriver snapshots the parent state at
// construction; advancing the parent afterwards must not change its
// streams (same rule as holding the result of a DeriveIndex call).
func TestIndexDeriverCapturesState(t *testing.T) {
	parent := New(11)
	d := parent.IndexDeriver("trial-")
	want := parent.DeriveIndex("trial-", 3)
	parent.Uint64() // advance after capture
	var got RNG
	d.SeedInto(&got, 3)
	if got.State() != want.State() {
		t.Fatal("IndexDeriver stream changed when the parent advanced after capture")
	}
}

// TestSeedIntoNoAlloc asserts the amortized derivation path is fully
// allocation-free, caller-held generator included.
func TestSeedIntoNoAlloc(t *testing.T) {
	parent := New(1)
	d := parent.IndexDeriver("trial-")
	var r RNG
	allocs := testing.AllocsPerRun(200, func() {
		d.SeedInto(&r, 123456)
	})
	if allocs != 0 {
		t.Fatalf("SeedInto allocates %.1f times per call, want 0", allocs)
	}
}
