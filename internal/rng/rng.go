// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component of the lemonade library.
//
// Reproducibility is a hard requirement for the experiments: every figure in
// EXPERIMENTS.md must regenerate bit-identically. All simulation code
// therefore takes an explicit *RNG; there is no global generator. Streams
// can be derived by label (Derive) so that adding a new consumer does not
// perturb the draws seen by existing ones.
//
// The generator is xoshiro256** seeded through SplitMix64, the combination
// recommended by Blackman & Vigna. It is not cryptographically secure and is
// never used for key material in the security-sensitive paths (those use
// crypto/rand via the keygen helpers in the using packages when real secrecy
// matters; the simulations only need statistical quality).
package rng

import (
	"math"
	"strconv"
)

// RNG is a xoshiro256** generator. It is NOT safe for concurrent use; derive
// one generator per goroutine with Derive or Split.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed via SplitMix64, so any
// seed (including 0) yields a well-mixed state.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.seed(seed)
	return r
}

// seed (re)initializes the generator in place from a SplitMix64-mixed seed
// — New without the allocation, for callers cycling one generator through
// many streams.
func (r *RNG) seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		r.s[i] = z ^ (z >> 31)
	}
}

// stateHash folds the generator's state into an FNV-1a accumulator; Derive
// and DeriveIndex extend it with label bytes to pick an independent stream.
func (r *RNG) stateHash() uint64 {
	h := uint64(14695981039346656037) // FNV offset basis
	for i := range r.s {
		s := r.s[i]
		for b := 0; b < 8; b++ {
			h ^= (s >> (8 * b)) & 0xFF
			h *= 1099511628211
		}
	}
	return h
}

// Derive returns a new independent generator whose seed is a hash of this
// generator's seed material and the label. Deriving with the same label
// twice yields identical streams; the parent is not advanced.
func (r *RNG) Derive(label string) *RNG {
	h := r.stateHash()
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return New(h)
}

// DeriveIndex is exactly Derive(label + decimal representation of i) but
// allocation-free, for per-trial stream derivation in hot loops. The stream
// is bit-identical to Derive(fmt.Sprintf(label+"%d", i)); the equivalence is
// locked down by TestDeriveIndexEquivalence.
func (r *RNG) DeriveIndex(label string, i int) *RNG {
	out := &RNG{}
	r.IndexDeriver(label).SeedInto(out, i)
	return out
}

// IndexDeriver is the amortized form of DeriveIndex: the FNV accumulation
// over the parent's state and the label — identical for every trial of a
// run — is folded once at construction, and SeedInto finishes the hash
// with just the index digits into a caller-held generator. It captures the
// parent's state at construction time, exactly as a DeriveIndex call at
// that moment would.
type IndexDeriver struct {
	prefix uint64
}

// IndexDeriver returns a deriver for the given label over this generator's
// current state.
func (r *RNG) IndexDeriver(label string) IndexDeriver {
	h := r.stateHash()
	for j := 0; j < len(label); j++ {
		h ^= uint64(label[j])
		h *= 1099511628211
	}
	return IndexDeriver{prefix: h}
}

// SeedInto re-seeds dst with the stream for index i, leaving it in exactly
// the state DeriveIndex(label, i) on the source generator would have
// returned — without allocating.
func (d IndexDeriver) SeedInto(dst *RNG, i int) {
	h := d.prefix
	var buf [20]byte // fits int64 including sign
	b := strconv.AppendInt(buf[:0], int64(i), 10)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	dst.seed(h)
}

// Split returns a new generator seeded from this generator's next output,
// advancing the parent. Useful for fanning out per-trial streams.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// State returns the generator's full internal state — the exact stream
// position — for checkpointing. Restoring it with SetState resumes the
// stream bit-identically, which is what lets a recovered architecture
// replay as if the process had never died.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state with a value
// previously captured by State. The all-zero state is the xoshiro256**
// fixed point (every output would be zero) and is rejected by falling
// back to the New(0) seeding, so a corrupted checkpoint cannot wedge the
// generator.
func (r *RNG) SetState(s [4]uint64) {
	if s == [4]uint64{} {
		*r = *New(0)
		return
	}
	r.s = s
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1), never exactly 0 —
// convenient for inverse-CDF sampling where log(0) must be avoided.
func (r *RNG) Float64Open() float64 {
	for {
		v := r.Float64()
		if v > 0 {
			return v
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		//lemonvet:allow panic mirrors math/rand.Intn contract; non-positive n is a caller bug
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns a variate with the given log-space mean and stddev.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bytes fills b with random bytes.
func (r *RNG) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// Poisson returns a Poisson(lambda) variate. Knuth's product method for
// small lambda; for large lambda it splits recursively to avoid underflow.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 500 {
		// split: Poisson(a+b) = Poisson(a) + Poisson(b)
		return r.Poisson(lambda/2) + r.Poisson(lambda/2)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64Open()
		if p <= l {
			return k
		}
		k++
	}
}
