package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	v := r.Uint64()
	if v == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced degenerate stream")
	}
}

func TestDeriveStableAndIndependent(t *testing.T) {
	root := New(7)
	a1 := root.Derive("weibull")
	a2 := root.Derive("weibull")
	b := root.Derive("attack")
	for i := 0; i < 100; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatal("same-label derivation not reproducible")
		}
	}
	a3 := root.Derive("weibull")
	diff := false
	for i := 0; i < 100; i++ {
		if a3.Uint64() != b.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different labels produced identical streams")
	}
}

func TestSplitAdvancesParent(t *testing.T) {
	a, b := New(9), New(9)
	_ = a.Split()
	if a.Uint64() == b.Uint64() {
		t.Error("Split should advance the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		if r.Float64Open() == 0 {
			t.Fatal("Float64Open returned 0")
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %g, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const buckets = 10
	counts := make([]int, buckets)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for i, c := range counts {
		expected := float64(n) / buckets
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("bucket %d count %d deviates too far from %g", i, c, expected)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(3); v < 0 || v > 2 {
			t.Fatalf("Intn(3) = %d", v)
		}
	}
	if v := r.Intn(1); v != 0 {
		t.Errorf("Intn(1) = %d, want 0", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %g", variance)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(23)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(math.Log(10), 0.5)
	}
	// crude median via counting below 10
	below := 0
	for _, v := range vals {
		if v < 10 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("lognormal median fraction below exp(mu) = %g, want ~0.5", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(29)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(31)
	s := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	sum2 := 0
	for _, v := range s {
		sum2 += v
	}
	if sum != sum2 {
		t.Error("shuffle changed elements")
	}
}

func TestBytesFills(t *testing.T) {
	r := New(37)
	for _, n := range []int{0, 1, 7, 8, 9, 31, 64} {
		b := make([]byte, n)
		r.Bytes(b)
		if n >= 16 {
			allZero := true
			for _, v := range b {
				if v != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				t.Errorf("Bytes(%d) produced all zeros", n)
			}
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(41)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %g", frac)
	}
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) fired")
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(61)
	for _, lambda := range []float64{0.5, 5, 50, 1200} {
		const n = 20000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(lambda))
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-lambda) > 4*math.Sqrt(lambda/n)+0.05 {
			t.Errorf("Poisson(%g) mean = %g", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.15*lambda+0.3 {
			t.Errorf("Poisson(%g) variance = %g", lambda, variance)
		}
	}
	if New(1).Poisson(0) != 0 {
		t.Error("Poisson(0) should be 0")
	}
	if New(1).Poisson(-1) != 0 {
		t.Error("negative lambda should be 0")
	}
}
