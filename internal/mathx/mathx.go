// Package mathx provides the numerical substrate used throughout the
// lemonade library: special functions (log-gamma combinatorics, regularized
// incomplete beta and gamma functions), exact and log-space binomial tail
// probabilities, scalar root finding and minimization, and compensated
// summation.
//
// Everything here is pure: no allocation-visible state, no globals, no
// randomness. The functions are tuned for the regimes the design-space
// exploration operates in — binomial tails with n up to ~1e9 computed in log
// space, and reliability values extremely close to 0 or 1.
package mathx

import (
	"errors"
	"math"
)

// Eps is the default relative tolerance used by the iterative algorithms in
// this package.
const Eps = 1e-12

// ErrNoConvergence is returned when an iterative algorithm exhausts its
// iteration budget before reaching the requested tolerance.
var ErrNoConvergence = errors.New("mathx: iteration did not converge")

// ErrBracket is returned by root finders when the supplied interval does not
// bracket a sign change.
var ErrBracket = errors.New("mathx: root is not bracketed")

// LogChoose returns ln C(n, k) using log-gamma. It is valid for 0 <= k <= n
// with n as large as float64 permits. For k outside [0, n] it returns -Inf
// (the coefficient is zero).
func LogChoose(n, k float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n { //lemonvet:allow floateq exact endpoints have exact coefficient ln C = 0
		return 0
	}
	lg := func(x float64) float64 {
		v, _ := math.Lgamma(x)
		return v
	}
	return lg(n+1) - lg(k+1) - lg(n-k+1)
}

// Choose returns C(n, k) as a float64. It overflows to +Inf for very large
// arguments; use LogChoose in log space when n is large.
func Choose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	return math.Exp(LogChoose(float64(n), float64(k)))
}

// Log1mExp returns ln(1 - e^x) for x < 0, computed stably across the full
// range. See Mächler (2012), "Accurately computing log(1 − exp(−|a|))".
func Log1mExp(x float64) float64 {
	if x >= 0 {
		return math.NaN()
	}
	if x > -math.Ln2 {
		return math.Log(-math.Expm1(x))
	}
	return math.Log1p(-math.Exp(x))
}

// LogSumExp returns ln(e^a + e^b) stably.
func LogSumExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// --- Regularized incomplete beta function ---------------------------------

// RegIncBeta returns I_x(a, b), the regularized incomplete beta function,
// for a, b > 0 and x in [0, 1]. It underlies the exact binomial CDF:
//
//	P(X <= k) = I_{1-p}(n-k, k+1) for X ~ Binomial(n, p).
//
// The continued-fraction expansion (Lentz's algorithm) from Numerical Recipes
// is used, switching to the symmetry relation when x > (a+1)/(a+b+2) for
// fast convergence.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return math.NaN()
	case a <= 0 || b <= 0:
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := logBeta(a, b)
	front := math.Exp(a*math.Log(x) + b*math.Log1p(-x) - lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - math.Exp(b*math.Log1p(-x)+a*math.Log(x)-lbeta)*betaCF(b, a, 1-x)/b
}

func logBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	// The Lentz iteration needs O(sqrt(min(a,b)·x)) terms near the
	// distribution bulk; 4000 covers the n ≤ ~2e5 binomial calls routed
	// here (larger n uses the normal approximation in BinomTailGE).
	const (
		maxIter = 4000
		tiny    = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			return h
		}
	}
	// The CF essentially always converges within the budget for the argument
	// ranges we use; return the best estimate rather than poisoning callers.
	return h
}

// --- Regularized incomplete gamma function ---------------------------------

// RegLowerGamma returns P(a, x), the regularized lower incomplete gamma
// function, for a > 0, x >= 0.
func RegLowerGamma(a, x float64) float64 {
	switch {
	case a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x == 0:
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

// RegUpperGamma returns Q(a, x) = 1 - P(a, x).
func RegUpperGamma(a, x float64) float64 {
	switch {
	case a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x == 0:
		return 1
	}
	if x < a+1 {
		return 1 - gammaSeries(a, x)
	}
	return gammaCF(a, x)
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaCF(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// --- Binomial tails ---------------------------------------------------------

// BinomTailGE returns P(X >= k) for X ~ Binomial(n, p). Up to n = 2e5 it
// uses the exact regularized incomplete beta identity
// P(X >= k) = I_p(k, n-k+1); beyond that it switches to the normal
// approximation with continuity correction (absolute error < ~1e-3 there,
// and the distribution tails are resolved exactly by the z-score guards).
// Results are clamped to [0, 1].
func BinomTailGE(n, k int, p float64) float64 {
	switch {
	case k <= 0:
		return 1
	case k > n:
		return 0
	case p <= 0:
		return 0
	case p >= 1:
		return 1
	}
	const exactLimit = 200_000
	if n <= exactLimit {
		return clamp01(RegIncBeta(float64(k), float64(n-k+1), p))
	}
	mean := float64(n) * p
	sd := math.Sqrt(float64(n) * p * (1 - p))
	// Small-mean (Poisson-like) regime: the normal approximation is poor
	// and the PMF support is narrow — sum it exactly in log space.
	if mean <= 10_000 || float64(n)-mean <= 10_000 {
		hi := int(mean + 40*sd + 40)
		if k > hi {
			return 0
		}
		var s KahanSum
		for i := 0; i < k; i++ {
			s.Add(math.Exp(LogBinomPMF(n, i, p)))
		}
		return clamp01(1 - s.Sum())
	}
	if sd == 0 {
		if float64(k) <= mean {
			return 1
		}
		return 0
	}
	z := (float64(k) - 0.5 - mean) / sd
	switch {
	case z < -12:
		return 1
	case z > 12:
		return 0
	}
	return clamp01(0.5 * math.Erfc(z/math.Sqrt2))
}

// BinomTailLE returns P(X <= k) for X ~ Binomial(n, p).
func BinomTailLE(n, k int, p float64) float64 {
	switch {
	case k < 0:
		return 0
	case k >= n:
		return 1
	case p <= 0:
		return 1
	case p >= 1:
		return 0
	}
	return clamp01(1 - BinomTailGE(n, k+1, p))
}

// LogBinomPMF returns ln P(X = k) for X ~ Binomial(n, p) in log space,
// valid for n up to ~1e15.
func LogBinomPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if p <= 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	if p >= 1 {
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	nf, kf := float64(n), float64(k)
	return LogChoose(nf, kf) + kf*math.Log(p) + (nf-kf)*math.Log1p(-p)
}

// BinomPMF returns P(X = k) for X ~ Binomial(n, p).
func BinomPMF(n, k int, p float64) float64 {
	return math.Exp(LogBinomPMF(n, k, p))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Clamp01 clamps v into [0, 1]. Exported for reuse by probability code.
func Clamp01(v float64) float64 { return clamp01(v) }

// --- Root finding -----------------------------------------------------------

// Brent finds a root of f in [a, b] using Brent's method. f(a) and f(b)
// must have opposite signs. tol is the absolute x tolerance.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, ErrBracket
	}
	c, fc := a, fa
	d, e := b-a, b-a
	for i := 0; i < 200; i++ {
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			d = b - a
			e = d
		}
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.SmallestNonzeroFloat64*math.Abs(b) + 0.5*tol
		xm := 0.5 * (c - b)
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c { //lemonvet:allow floateq Brent's method branches on exact bracket collapse
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			min1 := 3*xm*q - math.Abs(tol1*q)
			min2 := math.Abs(e * q)
			if 2*p < math.Min(min1, min2) {
				e = d
				d = p / q
			} else {
				d = xm
				e = d
			}
		} else {
			d = xm
			e = d
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else {
			b += math.Copysign(tol1, xm)
		}
		fb = f(b)
	}
	return b, ErrNoConvergence
}

// Bisect finds a root of f in [a, b] by bisection; more robust than Brent
// for discontinuous step-like functions (e.g. over integer-quantized inputs).
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, ErrBracket
	}
	for i := 0; i < 200 && b-a > tol; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if (fm > 0) == (fa > 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), nil
}

// --- Minimization -----------------------------------------------------------

// GoldenSection minimizes a unimodal f on [a, b] to absolute x tolerance tol,
// returning the minimizing x.
func GoldenSection(f func(float64) float64, a, b, tol float64) float64 {
	const invPhi = 0.6180339887498949
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return 0.5 * (a + b)
}

// MinIntSearch finds the smallest integer n in [lo, hi] such that pred(n)
// is true, assuming pred is monotone (false...false true...true).
// It returns hi+1 if pred is false on the whole range.
func MinIntSearch(lo, hi int, pred func(int) bool) int {
	for lo < hi {
		mid := lo + (hi-lo)/2
		if pred(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo <= hi && pred(lo) {
		return lo
	}
	return hi + 1
}

// MaxIntSearch finds the largest integer n in [lo, hi] such that pred(n)
// is true, assuming pred is monotone (true...true false...false).
// It returns lo-1 if pred is false on the whole range.
func MaxIntSearch(lo, hi int, pred func(int) bool) int {
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if pred(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if lo >= hi && pred(lo) {
		return lo
	}
	return lo - 1
}

// --- Compensated summation ---------------------------------------------------

// KahanSum accumulates float64 values with Kahan-Babuška compensation.
// The zero value is ready to use.
type KahanSum struct {
	sum, c float64
}

// Add accumulates v.
func (k *KahanSum) Add(v float64) {
	t := k.sum + v
	if math.Abs(k.sum) >= math.Abs(v) {
		k.c += (k.sum - t) + v
	} else {
		k.c += (v - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum + k.c }

// Linspace returns n evenly spaced values from a to b inclusive (n >= 2).
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		return []float64{a}
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b
	return out
}
