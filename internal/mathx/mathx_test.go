package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestLogChooseSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {5, 2, 10}, {10, 5, 252},
		{52, 5, 2598960}, {60, 30, 1.1826458156486142e+17},
	}
	for _, c := range cases {
		got := math.Exp(LogChoose(float64(c.n), float64(c.k)))
		if !almostEq(got, c.want, 1e-10) {
			t.Errorf("C(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestLogChooseOutOfRange(t *testing.T) {
	if !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("C(5,-1) should be 0 (log -Inf)")
	}
	if !math.IsInf(LogChoose(5, 6), -1) {
		t.Error("C(5,6) should be 0 (log -Inf)")
	}
}

func TestChoosePascalIdentity(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k)
	for n := 2; n <= 40; n++ {
		for k := 1; k < n; k++ {
			lhs := Choose(n, k)
			rhs := Choose(n-1, k-1) + Choose(n-1, k)
			if !almostEq(lhs, rhs, 1e-9) {
				t.Fatalf("Pascal identity fails at n=%d k=%d: %g vs %g", n, k, lhs, rhs)
			}
		}
	}
}

func TestLog1mExp(t *testing.T) {
	for _, x := range []float64{-1e-10, -0.1, -0.5, -1, -5, -50, -700} {
		want := math.Log(-math.Expm1(x)) // stable reference
		got := Log1mExp(x)
		if x > -700 && !almostEq(got, want, 1e-9) {
			t.Errorf("Log1mExp(%g) = %g, want %g", x, got, want)
		}
	}
	if !math.IsNaN(Log1mExp(0.5)) {
		t.Error("Log1mExp of positive argument should be NaN")
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp(math.Log(3), math.Log(4))
	if !almostEq(got, math.Log(7), 1e-12) {
		t.Errorf("LogSumExp(log3, log4) = %g, want log7 = %g", got, math.Log(7))
	}
	if LogSumExp(math.Inf(-1), 2.5) != 2.5 {
		t.Error("LogSumExp with -Inf should return other operand")
	}
	// extreme spread must not overflow
	got = LogSumExp(1000, -1000)
	if got != 1000 {
		t.Errorf("LogSumExp(1000,-1000) = %g, want 1000", got)
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1, 1) = x (uniform CDF)
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !almostEq(got, x, 1e-12) {
			t.Errorf("I_%g(1,1) = %g, want %g", x, got, x)
		}
	}
	// I_x(2, 2) = 3x^2 - 2x^3
	for _, x := range []float64{0.2, 0.5, 0.8} {
		want := 3*x*x - 2*x*x*x
		if got := RegIncBeta(2, 2, x); !almostEq(got, want, 1e-12) {
			t.Errorf("I_%g(2,2) = %g, want %g", x, got, want)
		}
	}
	// symmetry: I_x(a,b) = 1 - I_{1-x}(b,a)
	for _, x := range []float64{0.1, 0.37, 0.5, 0.93} {
		lhs := RegIncBeta(3.5, 7.2, x)
		rhs := 1 - RegIncBeta(7.2, 3.5, 1-x)
		if !almostEq(lhs, rhs, 1e-10) {
			t.Errorf("symmetry fails at x=%g: %g vs %g", x, lhs, rhs)
		}
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 {
		t.Error("I_0 should be 0")
	}
	if RegIncBeta(2, 3, 1) != 1 {
		t.Error("I_1 should be 1")
	}
	if !math.IsNaN(RegIncBeta(-1, 3, 0.5)) {
		t.Error("negative a should give NaN")
	}
}

func TestRegIncBetaMonotone(t *testing.T) {
	f := func(x float64) bool {
		x = math.Abs(math.Mod(x, 1))
		if x == 0 || x >= 0.999 {
			return true
		}
		return RegIncBeta(2.5, 4, x) <= RegIncBeta(2.5, 4, x+0.001)+1e-14
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegGammaComplement(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 10} {
		for _, x := range []float64{0.1, 1, 5, 20} {
			p := RegLowerGamma(a, x)
			q := RegUpperGamma(a, x)
			if !almostEq(p+q, 1, 1e-10) {
				t.Errorf("P+Q != 1 for a=%g x=%g: %g", a, x, p+q)
			}
		}
	}
	// P(1, x) = 1 - e^-x (exponential CDF)
	for _, x := range []float64{0.5, 1, 3} {
		want := 1 - math.Exp(-x)
		if got := RegLowerGamma(1, x); !almostEq(got, want, 1e-12) {
			t.Errorf("P(1,%g) = %g, want %g", x, got, want)
		}
	}
}

// brute force binomial tail for cross-validation
func bruteTailGE(n, k int, p float64) float64 {
	var s KahanSum
	for i := k; i <= n; i++ {
		s.Add(BinomPMF(n, i, p))
	}
	return s.Sum()
}

func TestBinomTailGEAgainstBrute(t *testing.T) {
	cases := []struct {
		n, k int
		p    float64
	}{
		{10, 3, 0.5}, {10, 0, 0.5}, {10, 10, 0.5}, {50, 25, 0.3},
		{100, 10, 0.05}, {100, 90, 0.95}, {7, 4, 0.1}, {200, 60, 0.31},
	}
	for _, c := range cases {
		got := BinomTailGE(c.n, c.k, c.p)
		want := bruteTailGE(c.n, c.k, c.p)
		if !almostEq(got, want, 1e-9) {
			t.Errorf("BinomTailGE(%d,%d,%g) = %g, want %g", c.n, c.k, c.p, got, want)
		}
	}
}

func TestBinomTailEdges(t *testing.T) {
	if BinomTailGE(10, 0, 0.5) != 1 {
		t.Error("P(X>=0) must be 1")
	}
	if BinomTailGE(10, 11, 0.5) != 0 {
		t.Error("P(X>=n+1) must be 0")
	}
	if BinomTailGE(10, 5, 0) != 0 {
		t.Error("p=0 with k>0 must be 0")
	}
	if BinomTailGE(10, 5, 1) != 1 {
		t.Error("p=1 with k<=n must be 1")
	}
	if BinomTailLE(10, -1, 0.5) != 0 {
		t.Error("P(X<=-1) must be 0")
	}
	if BinomTailLE(10, 10, 0.5) != 1 {
		t.Error("P(X<=n) must be 1")
	}
}

func TestBinomTailComplement(t *testing.T) {
	f := func(seed int64) bool {
		n := int(math.Abs(float64(seed%500))) + 1
		k := int(math.Abs(float64(seed % int64(n))))
		p := math.Abs(math.Mod(float64(seed)*0.618, 1))
		if p == 0 || p == 1 {
			return true
		}
		return almostEq(BinomTailLE(n, k, p)+BinomTailGE(n, k+1, p), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBinomTailLargeN(t *testing.T) {
	// For large n with small p the tail must match the Poisson limit.
	n := 100_000_000
	p := 5e-8 // mean 5
	got := BinomTailGE(n, 1, p)
	want := 1 - math.Exp(-5) // Poisson P(X>=1)
	if !almostEq(got, want, 1e-4) {
		t.Errorf("large-n tail = %g, want ~%g", got, want)
	}
	got = BinomTailGE(n, 10, p)
	// Poisson P(X>=10), mean 5
	var s float64
	term := math.Exp(-5.0)
	for i := 0; i < 10; i++ {
		s += term
		term *= 5.0 / float64(i+1)
	}
	want = 1 - s
	if !almostEq(got, want, 1e-3) {
		t.Errorf("large-n tail k=10 = %g, want ~%g", got, want)
	}
}

func TestLogBinomPMFDegenerate(t *testing.T) {
	if LogBinomPMF(5, 0, 0) != 0 {
		t.Error("P(X=0|p=0) must be 1 (log 0)")
	}
	if !math.IsInf(LogBinomPMF(5, 1, 0), -1) {
		t.Error("P(X=1|p=0) must be 0")
	}
	if LogBinomPMF(5, 5, 1) != 0 {
		t.Error("P(X=n|p=1) must be 1")
	}
}

func TestBrentRoot(t *testing.T) {
	// root of cos(x) - x near 0.739085
	root, err := Brent(func(x float64) float64 { return math.Cos(x) - x }, 0, 1, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(root, 0.7390851332151607, 1e-9) {
		t.Errorf("root = %.12f", root)
	}
	// exact at endpoint
	root, err = Brent(func(x float64) float64 { return x - 2 }, 2, 5, 1e-12)
	if err != nil || root != 2 {
		t.Errorf("endpoint root: %v %v", root, err)
	}
	// not bracketed
	if _, err := Brent(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12); err != ErrBracket {
		t.Errorf("expected ErrBracket, got %v", err)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x*x - 8 }, 0, 10, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(root, 2, 1e-8) {
		t.Errorf("cbrt root = %g", root)
	}
}

func TestGoldenSection(t *testing.T) {
	x := GoldenSection(func(x float64) float64 { return (x - 3.25) * (x - 3.25) }, 0, 10, 1e-9)
	if !almostEq(x, 3.25, 1e-6) {
		t.Errorf("min at %g, want 3.25", x)
	}
}

func TestMinIntSearch(t *testing.T) {
	got := MinIntSearch(0, 100, func(n int) bool { return n >= 37 })
	if got != 37 {
		t.Errorf("MinIntSearch = %d, want 37", got)
	}
	got = MinIntSearch(0, 100, func(n int) bool { return false })
	if got != 101 {
		t.Errorf("MinIntSearch all-false = %d, want 101", got)
	}
	got = MinIntSearch(5, 5, func(n int) bool { return true })
	if got != 5 {
		t.Errorf("MinIntSearch singleton = %d, want 5", got)
	}
}

func TestMaxIntSearch(t *testing.T) {
	got := MaxIntSearch(0, 100, func(n int) bool { return n <= 42 })
	if got != 42 {
		t.Errorf("MaxIntSearch = %d, want 42", got)
	}
	got = MaxIntSearch(10, 100, func(n int) bool { return false })
	if got != 9 {
		t.Errorf("MaxIntSearch all-false = %d, want 9", got)
	}
}

func TestKahanSum(t *testing.T) {
	var s KahanSum
	// adding 1e-10 ten billion times should be ~1.0 with compensation
	for i := 0; i < 1_000_000; i++ {
		s.Add(1e-6)
	}
	if !almostEq(s.Sum(), 1, 1e-9) {
		t.Errorf("compensated sum = %.15f, want 1", s.Sum())
	}
	// mixed magnitudes
	var m KahanSum
	m.Add(1e16)
	m.Add(1)
	m.Add(-1e16)
	if m.Sum() != 1 {
		t.Errorf("mixed-magnitude sum = %g, want 1", m.Sum())
	}
}

func TestLinspace(t *testing.T) {
	v := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(v) != 5 {
		t.Fatalf("len = %d", len(v))
	}
	for i := range v {
		if !almostEq(v[i], want[i], 1e-12) {
			t.Errorf("v[%d] = %g, want %g", i, v[i], want[i])
		}
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("degenerate linspace = %v", got)
	}
}

func TestClamp01(t *testing.T) {
	if Clamp01(-0.5) != 0 || Clamp01(1.5) != 1 || Clamp01(0.3) != 0.3 {
		t.Error("Clamp01 misbehaves")
	}
}

func TestBinomTailBranchConsistency(t *testing.T) {
	// The exact (incomplete beta), normal, and Poisson-summation branches
	// must agree near their hand-off boundaries.
	// exact vs normal: same p, proportional k, n straddling 200k.
	p := 0.117
	frac := 0.10
	nExact, nNormal := 199_000, 201_000
	vExact := BinomTailGE(nExact, int(frac*float64(nExact)), p)
	vNormal := BinomTailGE(nNormal, int(frac*float64(nNormal)), p)
	// both are essentially 1 here (mean 11.7% >> 10%); they must agree to
	// within normal-approximation error.
	if math.Abs(vExact-vNormal) > 5e-3 {
		t.Errorf("branch mismatch at boundary: exact %g vs normal %g", vExact, vNormal)
	}
	// a mid-probability point where the value is not saturated
	kMid := func(n int) int { return int(0.117*float64(n)) + 20 }
	vE := BinomTailGE(nExact, kMid(nExact), p)
	vN := BinomTailGE(nNormal, kMid(nNormal), p)
	if vE < 1e-6 || vE > 1-1e-6 {
		t.Logf("note: midpoint saturated (%g); boundary check weaker", vE)
	}
	if math.Abs(vE-vN) > 2e-2 {
		t.Errorf("mid-tail branch mismatch: %g vs %g", vE, vN)
	}
	// Poisson-summation branch vs exact Poisson at huge n / small mean
	n := 5_000_000
	pTiny := 2.0 / float64(n) // mean 2
	got := BinomTailGE(n, 3, pTiny)
	// Poisson(2): P(X>=3) = 1 - e^-2(1 + 2 + 2)
	want := 1 - math.Exp(-2)*(1+2+2)
	if math.Abs(got-want) > 1e-4 {
		t.Errorf("Poisson-regime tail %g vs %g", got, want)
	}
}
